"""Span-based tracing with a JSONL event sink.

``with span("e01/replica-sweep"):`` times a named stage; on exit the
span emits one event dict to the installed :class:`Tracer`, which
buffers it (and forwards it to a sink callable — typically
:meth:`repro.obs.recorder.RunRecorder.emit`, which appends JSONL).
Spans nest: each event carries its depth and its parent's name, so a
trace file reconstructs the wall-clock breakdown of a run.

When observability is disabled, or no tracer is installed,
:func:`span` returns a shared no-op context manager — the fast path
allocates nothing.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["Tracer", "span", "set_tracer", "get_tracer"]


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; emits its event on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self._tracer._stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack
        stack.pop()
        event: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "depth": len(stack),
            "parent": stack[-1] if stack else None,
            "t": round(time.perf_counter() - tracer.epoch, 9),
            "dur_s": round(dur, 9),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        tracer.emit(event)
        return False


class Tracer:
    """Collects span events in memory and forwards them to a sink."""

    def __init__(self, sink: Callable[[dict], None] | None = None):
        self.sink = sink
        self.events: list[dict] = []
        self.epoch = time.perf_counter()
        self._stack: list[str] = []

    def span(self, name: str, **attrs) -> _Span:
        """Open a named span (use as a context manager)."""
        return _Span(self, name, attrs)

    def emit(self, event: dict) -> None:
        """Record one event and forward it to the sink, if any."""
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)


_tracer: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with ``None``) the global tracer; returns the old one."""
    global _tracer
    prev = _tracer
    _tracer = tracer
    return prev


def get_tracer() -> Tracer | None:
    """The currently installed global tracer (``None`` when tracing is off)."""
    return _tracer


def span(name: str, **attrs):
    """A span on the global tracer, or a shared no-op if none is installed."""
    if _tracer is None:
        return _NULL_SPAN
    return _tracer.span(name, **attrs)
