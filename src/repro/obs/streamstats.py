"""Single-pass streaming estimators for per-step chain telemetry.

The probe layer (:mod:`repro.obs.probes`) observes a trajectory at
decimated steps and must summarize it *online*: a mixing-time campaign
at paper scale produces far more samples than we want to hold, and the
``repro obs watch`` view needs current estimates at any moment.  Three
classic constant-memory estimators cover what the recovery analysis
reads off a trajectory:

* :class:`Welford` — numerically stable running mean/variance
  (Welford 1962; the batched update uses the Chan et al. parallel
  merge, so whole fleets fold in per observation);
* :class:`P2Quantile` — the P² marker-based quantile estimator of
  Jain & Chlamtac (1985): five markers track an arbitrary quantile
  with O(1) memory and no resorting;
* :class:`ExpHistogram` — exponential (power-of-two) load buckets,
  the natural resolution for max-load statistics whose interesting
  scale is logarithmic (Θ(log n / log log n) bands).

All are validated against exact NumPy computations in
``tests/test_streamstats.py`` and are deterministic functions of the
observation sequence — a requirement for byte-identical
``timeseries.jsonl`` artifacts under a fixed seed.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Welford", "P2Quantile", "ExpHistogram", "Extrema"]


class Welford:
    """Running mean/variance via Welford's algorithm (merge-capable)."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, x: float) -> None:
        """Fold one observation in."""
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    def update_many(self, xs: Iterable[float]) -> None:
        """Fold a batch in (Chan et al. pairwise merge, one pass)."""
        arr = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs,
                         dtype=np.float64)
        k = int(arr.size)
        if k == 0:
            return
        b_mean = float(arr.mean())
        b_m2 = float(((arr - b_mean) ** 2).sum())
        if self.n == 0:
            self.n, self.mean, self._m2 = k, b_mean, b_m2
            return
        n = self.n + k
        delta = b_mean - self.mean
        self._m2 += b_m2 + delta * delta * self.n * k / n
        self.mean += delta * k / n
        self.n = n

    @property
    def variance(self) -> float:
        """Population variance (ddof=0); 0.0 before any observation."""
        return self._m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def snapshot(self) -> dict:
        """JSON-friendly state for a timeseries point."""
        return {"n": self.n, "mean": self.mean, "std": self.std}

    def state_dict(self) -> dict:
        """Full internal state for checkpoint/resume (lossless)."""
        return {"n": self.n, "mean": self.mean, "m2": self._m2}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self.n = int(state["n"])
        self.mean = float(state["mean"])
        self._m2 = float(state["m2"])


class P2Quantile:
    """The P² streaming quantile estimator (Jain & Chlamtac 1985).

    Five markers track the running *q*-quantile with O(1) memory: the
    extreme markers pin min/max, the middle one estimates the quantile,
    and marker heights are adjusted by a piecewise-parabolic (P²)
    interpolation whenever their positions drift off the desired ones.
    Exact for the first five observations; afterwards an estimate whose
    error vanishes as the sample grows (validated against
    ``np.quantile`` in the tests).
    """

    __slots__ = ("q", "_heights", "_pos", "_want", "_inc", "n")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.n = 0
        self._heights: list[float] = []
        # Marker positions (1-based, as in the paper), desired
        # positions, and their per-observation increments.
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def update(self, x: float) -> None:
        """Fold one observation in."""
        x = float(x)
        self.n += 1
        h = self._heights
        if self.n <= 5:
            h.append(x)
            h.sort()
            return
        pos = self._pos
        # Locate the cell k containing x and bump extreme markers.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._want[i] += self._inc[i]
        # Adjust interior markers whose position is off by >= 1.
        for i in (1, 2, 3):
            d = self._want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, step)
                if h[i - 1] < cand < h[i + 1]:
                    h[i] = cand
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def update_many(self, xs: Iterable[float]) -> None:
        """Fold a batch in (sequentially; P² has no exact merge)."""
        for x in xs:
            self.update(x)

    def state_dict(self) -> dict:
        """Full marker state for checkpoint/resume (lossless)."""
        return {
            "q": self.q,
            "n": self.n,
            "heights": list(self._heights),
            "pos": list(self._pos),
            "want": list(self._want),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        if float(state["q"]) != self.q:
            raise ValueError(
                f"P2Quantile state is for q={state['q']}, estimator has q={self.q}"
            )
        self.n = int(state["n"])
        self._heights = [float(x) for x in state["heights"]]
        self._pos = [float(x) for x in state["pos"]]
        self._want = [float(x) for x in state["want"]]

    @property
    def value(self) -> float:
        """Current quantile estimate (exact while n <= 5)."""
        h = self._heights
        if not h:
            return 0.0
        if self.n <= 5:
            # Exact small-sample quantile (linear interpolation).
            idx = self.q * (len(h) - 1)
            lo = int(idx)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (idx - lo) * (h[hi] - h[lo])
        return h[2]


class ExpHistogram:
    """Exponential (power-of-two) bucket histogram for nonnegative loads.

    Bucket 0 counts zeros; bucket j >= 1 counts values in
    [2^(j-1), 2^j).  Max-load phenomena live on a logarithmic scale
    (Θ(log n / log log n) typical bands, O(log n) recovery envelopes),
    so ~64 buckets cover any int64 load exactly.
    """

    __slots__ = ("counts",)

    #: int64 values need at most 1 + 63 buckets.
    NBUCKETS = 64

    def __init__(self) -> None:
        self.counts = np.zeros(self.NBUCKETS, dtype=np.int64)

    @staticmethod
    def bucket_of(value: int) -> int:
        """The bucket index of one nonnegative value."""
        v = int(value)
        if v < 0:
            raise ValueError(f"loads must be nonnegative, got {v}")
        return v.bit_length()

    def update(self, values: Sequence[int] | np.ndarray) -> None:
        """Fold an array of nonnegative integer loads in."""
        arr = np.asarray(values)
        if arr.size == 0:
            return
        if arr.min() < 0:
            raise ValueError("loads must be nonnegative")
        # bit_length via log2: exact for int64 magnitudes (< 2^63).
        j = np.zeros(arr.shape, dtype=np.int64)
        pos = arr > 0
        if pos.any():
            j[pos] = np.floor(np.log2(arr[pos].astype(np.float64))).astype(np.int64) + 1
        self.counts += np.bincount(j, minlength=self.NBUCKETS)

    @property
    def total(self) -> int:
        """Total observations folded in."""
        return int(self.counts.sum())

    def nonzero(self) -> dict[int, int]:
        """Sparse ``{bucket: count}`` view (what gets persisted)."""
        (idx,) = np.nonzero(self.counts)
        return {int(i): int(self.counts[i]) for i in idx}

    @staticmethod
    def bucket_bounds(j: int) -> tuple[int, int]:
        """Inclusive value range [lo, hi] of bucket *j*."""
        if j == 0:
            return (0, 0)
        return (1 << (j - 1), (1 << j) - 1)

    def state_dict(self) -> dict:
        """Sparse bucket counts for checkpoint/resume (lossless)."""
        return {"counts": {str(k): c for k, c in self.nonzero().items()}}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self.counts = np.zeros(self.NBUCKETS, dtype=np.int64)
        for k, c in state["counts"].items():
            self.counts[int(k)] = int(c)


class Extrema:
    """Running min/max/last tracker (the cheap part of every series)."""

    __slots__ = ("n", "min", "max", "last")

    def __init__(self) -> None:
        self.n = 0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0

    def update(self, x: float) -> None:
        x = float(x)
        self.n += 1
        self.last = x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def snapshot(self) -> dict:
        if self.n == 0:
            return {"n": 0}
        return {"n": self.n, "min": self.min, "max": self.max, "last": self.last}

    def state_dict(self) -> dict:
        """Full state for checkpoint/resume (infinities encoded as None)."""
        return {
            "n": self.n,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
            "last": self.last,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self.n = int(state["n"])
        self.min = math.inf if state["min"] is None else float(state["min"])
        self.max = -math.inf if state["max"] is None else float(state["max"])
        self.last = float(state["last"])
