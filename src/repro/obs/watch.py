"""Live terminal view of a probed run: ``python -m repro obs watch <run-dir>``.

Tails ``timeseries.jsonl`` while (or after) a probed run writes it,
rendering one frame per refresh:

* a header — run dir, stream schema, probe decimation, run status
  (``running…`` until ``meta.json`` appears; the recorder writes it
  only at finalization, including interrupted finalization);
* one line per probe series — point count, last step, a sparkline of
  the headline stat over the most recent window, and its current
  value; a parallel campaign's worker-tagged series additionally
  render one indented lane per worker plus a fleet-aggregate line
  (per-step cross-lane mean folded through the Chan/Welford merge in
  :mod:`repro.obs.streamstats`);
* a worker panel over ``heartbeats.jsonl`` — last beat age, replica
  progress, RSS, points shipped — flagging ``STALLED`` lanes whose
  heartbeats stopped while the run is still live;
* fired recovery-monitor events with their bound verdicts;
* a throughput line — probe steps/s measured between refreshes, and an
  ETA when the run's metadata declares a step target
  (``steps_total``), formatted via the ProgressReporter helpers.

The loop exits when ``meta.json`` reaches a terminal status
(``ok``/``error``/``failed``/``interrupted``); ``--follow`` keeps
tailing regardless, for directories that are re-run in place.

Everything renders from the artifact alone, so watching a live run, a
finished one, or a truncated one from a killed process all degrade to
whatever the stream holds — same tolerance contract as ``summarize``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any

from repro.experiments.base import format_duration
from repro.obs.streamstats import Welford
from repro.obs.timeseries import (
    header_of,
    latest_heartbeats,
    load_heartbeats,
    load_timeseries,
    monitor_events,
    points_by_series,
    stat_track,
    workers_of,
)
from repro.utils.ascii_plot import sparkline

__all__ = ["render_frame", "watch", "headline_stat", "TERMINAL_STATUSES"]

#: ``meta.json`` statuses that end a (non ``--follow``) watch loop.
TERMINAL_STATUSES = frozenset({"ok", "error", "failed", "interrupted"})

#: A live worker whose last heartbeat is older than this is flagged.
STALL_AFTER_S = 5.0

#: Preferred headline stat per point schema, in priority order.
_HEADLINES = ("max", "tv", "mean", "value", "distance")

#: Sparkline window: the most recent points shown per series.
_WINDOW = 48


def headline_stat(points: list[dict]) -> str | None:
    """Pick the stat a series' sparkline should show.

    Prefers the conventional names (max load, TV distance, fleet mean),
    falling back to the first scalar stat of the last point, so unknown
    probe schemas still render.
    """
    if not points:
        return None
    stats = points[-1].get("stats", {})
    if not isinstance(stats, dict):
        return None
    for name in _HEADLINES:
        if isinstance(stats.get(name), (int, float)) and not isinstance(
            stats.get(name), bool
        ):
            return name
    for name, value in stats.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return name
    return None


def _load_meta(run_dir: str) -> dict:
    """Tolerant ``meta.json`` read: missing/corrupt → ``{}`` (run live or killed)."""
    path = os.path.join(run_dir, "meta.json")
    try:
        with open(path) as f:
            meta = json.load(f)
        return meta if isinstance(meta, dict) else {}
    except (OSError, json.JSONDecodeError):
        return {}


def _monitor_line(e: dict) -> str:
    head = f"  [{e.get('monitor', 'monitor')}] {e.get('series', '?')}"
    body = f" fired at step {e.get('step', '?')} (value {e.get('value', '?')}"
    thr = e.get("threshold")
    if thr is not None:
        body += f" <= {thr}"
    body += ")"
    if "bound_step" in e:
        verdict = "within" if e.get("within_bound") else "OUTSIDE"
        body += f" — bound {e['bound_step']}: {verdict}"
    return head + body


def _series_line(label: str, stat: str, steps, values, n_points: int,
                 width: int) -> str:
    tail = values[-width:]
    return (
        f"{label} [{stat}] {sparkline(tail)} "
        f"last={values[-1]:g} @ step {steps[-1]} "
        f"(min {min(values):g}, max {max(values):g}, {n_points} pts)"
    )


def _fleet_track(lanes: dict[int, list[dict]], stat: str) -> tuple[list, list]:
    """Per-step cross-lane mean of *stat*: the fleet-aggregate track.

    Each probed step's lane values fold through one Welford batch merge
    (Chan et al.), mirroring how the probes themselves aggregate fleets.
    """
    by_step: dict[int, list[float]] = {}
    for points in lanes.values():
        for step, value in zip(*stat_track(points, stat)):
            by_step.setdefault(step, []).append(value)
    steps = sorted(by_step)
    means: list[float] = []
    for step in steps:
        agg = Welford()
        agg.update_many(by_step[step])
        means.append(agg.mean)
    return steps, means


def _worker_panel(heartbeats: list[dict], *, live: bool,
                  now: float | None = None) -> list[str]:
    """Render the per-worker liveness panel from the heartbeat stream."""
    latest = latest_heartbeats(heartbeats)
    if not latest:
        return []
    now = time.time() if now is None else now
    lines = ["workers:"]
    for worker in sorted(latest):
        r = latest[worker]
        age = max(0.0, now - float(r.get("at", now)))
        if r.get("type") == "bye":
            lines.append(f"  w{worker} done (bye {age:.1f}s ago)")
            continue
        done = r.get("items_done")
        total = r.get("items_total")
        progress = f"{done}/{total} items" if total else f"{done} items"
        rss_kb = r.get("rss_kb") or 0
        detail = f"{progress}, {r.get('points', 0)} pts"
        if rss_kb:
            detail += f", rss {rss_kb / 1024:.1f} MB"
        if live and age > STALL_AFTER_S:
            lines.append(
                f"  w{worker} STALLED — last beat {age:.1f}s ago ({detail})"
            )
        else:
            lines.append(f"  w{worker} ♥ {age:.1f}s ago — {detail}")
    return lines


def render_frame(
    run_dir: str,
    *,
    width: int = _WINDOW,
    rate: float | None = None,
    eta_s: float | None = None,
) -> str:
    """Render one watch frame of *run_dir* (pure: reads files, returns text)."""
    records, corrupt = load_timeseries(run_dir)
    heartbeats, hb_corrupt = load_heartbeats(run_dir)
    corrupt += hb_corrupt
    meta = _load_meta(run_dir)
    header = header_of(records)
    status = meta.get("status", "running…")
    lines = [
        f"watch {run_dir} — status {status}, "
        f"schema {header.get('schema', '?')}, "
        f"probe_every {header.get('probe_every', '?')}"
    ]
    workers = workers_of(records)
    if workers:
        lines[0] += f", {len(workers)} worker lane(s)"
    if status not in ("ok", "error", "failed"):
        from repro.checkpoint.store import checkpoint_step

        ckpt_step = meta.get("last_checkpoint_step")
        if ckpt_step is None:
            ckpt_step = checkpoint_step(run_dir)
        if ckpt_step is not None:
            lines.append(
                f"  resumable at step {ckpt_step}: "
                f"python -m repro resume {run_dir}"
            )
    if corrupt:
        lines.append(f"  warning: {corrupt} corrupt line(s) skipped (truncated run?)")
    series = points_by_series(records)
    if not series:
        lines.append("  (no probe points yet)")
    for name, points in sorted(series.items()):
        stat = headline_stat(points)
        if stat is None:
            lines.append(f"  {name}: {len(points)} points (no scalar stats)")
            continue
        lanes: dict[int, list[dict]] = {}
        for p in points:
            if isinstance(p.get("worker"), int):
                lanes.setdefault(p["worker"], []).append(p)
        if len(lanes) > 1:
            # Fleet view: the cross-lane mean first, one lane per worker
            # beneath it.
            steps, means = _fleet_track(lanes, stat)
            if means:
                lines.append(
                    _series_line(
                        f"  {name}", f"fleet mean {stat}", steps, means,
                        len(points), width,
                    )
                )
            for worker in sorted(lanes):
                w_steps, w_values = stat_track(lanes[worker], stat)
                if not w_values:
                    continue
                lines.append(
                    _series_line(
                        f"    w{worker}", stat, w_steps, w_values,
                        len(lanes[worker]), width,
                    )
                )
            continue
        steps, values = stat_track(points, stat)
        if not values:
            lines.append(f"  {name}: {len(points)} points (no {stat} values)")
            continue
        lines.append(
            _series_line(f"  {name}", stat, steps, values, len(points), width)
        )
    lines.extend(_worker_panel(heartbeats, live=status not in TERMINAL_STATUSES))
    fired = monitor_events(records)
    if fired:
        lines.append("monitors:")
        lines.extend(_monitor_line(e) for e in fired)
    if "duration_s" in meta:
        lines.append(f"finished in {format_duration(float(meta['duration_s']))}")
    elif rate is not None:
        tail = f"{rate:.0f} steps/s"
        if eta_s is not None:
            tail += f", eta ~{format_duration(eta_s)}"
        lines.append(f"throughput: {tail}")
    return "\n".join(lines)


def watch(
    run_dir: str,
    *,
    interval: float = 1.0,
    frames: int | None = None,
    once: bool = False,
    follow: bool = False,
    stream: Any = None,
) -> int:
    """Tail *run_dir* until the run reaches a terminal status.

    Each refresh re-reads the stream and prints a frame; on a TTY the
    screen is cleared between frames, elsewhere frames are separated by
    a rule so piped output stays line-oriented.  The loop ends when
    ``meta.json`` carries a :data:`TERMINAL_STATUSES` status (*follow*
    keeps tailing anyway), after *frames* frames, or after one frame
    with *once*.  Returns 0; raises :class:`FileNotFoundError` when
    *run_dir* never appears.
    """
    out = stream if stream is not None else sys.stdout
    if not os.path.isdir(run_dir):
        raise FileNotFoundError(f"{run_dir!r} is not a run directory")
    is_tty = bool(getattr(out, "isatty", lambda: False)())
    rendered = 0
    prev: tuple[float, int] | None = None
    while True:
        records, _ = load_timeseries(run_dir)
        last_step = 0
        for r in records:
            if r.get("type") == "point":
                last_step = max(last_step, int(r.get("step", 0)))
        now = time.perf_counter()
        rate = None
        eta_s = None
        if prev is not None and now > prev[0] and last_step > prev[1]:
            rate = (last_step - prev[1]) / (now - prev[0])
            meta = _load_meta(run_dir)
            total = meta.get("steps_total")
            if isinstance(total, (int, float)) and total > last_step and rate > 0:
                eta_s = (float(total) - last_step) / rate
        prev = (now, last_step)
        frame = render_frame(run_dir, rate=rate, eta_s=eta_s)
        if is_tty:
            print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        else:
            if rendered:
                print("-" * 72, file=out, flush=True)
            print(frame, file=out, flush=True)
        rendered += 1
        terminal = _load_meta(run_dir).get("status") in TERMINAL_STATUSES
        if once or (terminal and not follow) or (
            frames is not None and rendered >= frames
        ):
            return 0
        time.sleep(interval)
