"""Unified benchmark runner: ``python -m repro bench run``.

The repo's perf story lives in ``benchmarks/bench_*.py`` — pytest-style
modules whose ``test_bench_*`` functions drive a ``benchmark`` fixture.
This module executes them *without* pytest, under one schema-versioned
protocol, so every PR can leave a machine-readable point on the perf
trajectory:

* **discovery** — :func:`discover` imports each ``bench_*.py`` and
  collects ``test_bench_*`` callables, mapping their fixture parameters
  (``benchmark``, ``experiment_bench``, ``tmp_path``) onto lightweight
  shims; functions needing unsupported fixtures are reported as skipped,
  never silently dropped;
* **timing** — :class:`BenchTimer` is a pytest-benchmark-compatible
  shim (``benchmark(fn)`` / ``benchmark.pedantic(...)``) doing
  calibration (inner iterations grown until a round is long enough to
  time), warmup rounds, then ``--repeats`` timed rounds recording wall
  *and* CPU seconds per iteration;
* **resources** — :class:`ResourceSampler` is a background thread
  sampling RSS (``/proc/self/status``, ``resource`` fallback) and CPU
  utilisation, wired into the run's :class:`~repro.obs.recorder.RunRecorder`
  as ``resource/*`` series, with per-bench peak-RSS windows;
* **artifact** — :func:`run_benchmarks` writes a
  ``BENCH_<timestamp>_<gitrev>.json`` (schema ``repro.bench/1``:
  per-bench wall/CPU stats with iteration quantiles and raw round
  samples, peak RSS, env fingerprint) plus a ``runs/bench-*/`` run dir
  (spans + resource series) that ``repro obs summarize`` understands.

The timed sections run with observability *disabled* — the numbers
measure the production fast path, not the instrumented one.  Diff two
artifacts with ``repro obs diff`` (:mod:`repro.obs.compare`).
"""

from __future__ import annotations

import contextlib
import glob
import importlib.util
import inspect
import io
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.obs import runtime
from repro.obs.recorder import RunRecorder, git_revision
from repro.obs.trace import set_tracer

__all__ = [
    "SCHEMA",
    "BenchTimer",
    "BenchSpec",
    "ResourceSampler",
    "discover",
    "run_benchmarks",
    "summary_stats",
    "validate_bench_payload",
]

#: Schema tag written into every bench artifact; bump on breaking change.
SCHEMA = "repro.bench/1"

#: Fixture names the runner knows how to supply (everything else skips).
SUPPORTED_FIXTURES = ("benchmark", "experiment_bench", "tmp_path")

#: Raw per-round samples persisted per bench (stats cover all rounds).
MAX_PERSISTED_SAMPLES = 64


# -- resource sampling ---------------------------------------------------------


def read_rss_kb() -> float:
    """Resident set size in KiB (``/proc``; peak-RSS fallback elsewhere)."""
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1])
    except OSError:
        pass
    import resource

    # ru_maxrss is the *peak*, and is bytes on macOS, KiB on Linux.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


class ResourceSampler:
    """Background thread sampling RSS/CPU every *interval* seconds.

    When a :class:`RunRecorder` is attached, each sample also lands in
    the run artifact as ``resource/rss_mb`` and ``resource/cpu_pct``
    series, so ``repro obs summarize`` shows the memory/CPU profile of
    a bench session next to its stage timings.
    """

    def __init__(self, *, interval: float = 0.05, recorder: RunRecorder | None = None):
        self.interval = interval
        self.recorder = recorder
        self.peak_rss_kb = 0.0
        self.samples = 0
        self._cpu_pct_sum = 0.0
        self._cpu_pct_n = 0
        self._window_peak_kb = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-bench-sampler", daemon=True
        )

    # One direct sample, updating peaks (called from the loop *and* at
    # window edges so even sub-interval benches get a reading).
    def sample_now(self) -> float:
        rss = read_rss_kb()
        with self._lock:
            self.samples += 1
            self.peak_rss_kb = max(self.peak_rss_kb, rss)
            self._window_peak_kb = max(self._window_peak_kb, rss)
            step = self.samples
        if self.recorder is not None:
            self.recorder.record("resource/rss_mb", step, rss / 1024.0)
        return rss

    def _loop(self) -> None:
        last_wall = time.perf_counter()
        last_cpu = time.process_time()
        while not self._stop.wait(self.interval):
            self.sample_now()
            wall, cpu = time.perf_counter(), time.process_time()
            pct = 100.0 * (cpu - last_cpu) / max(wall - last_wall, 1e-9)
            last_wall, last_cpu = wall, cpu
            with self._lock:
                self._cpu_pct_sum += pct
                self._cpu_pct_n += 1
                step = self.samples
            if self.recorder is not None:
                self.recorder.record("resource/cpu_pct", step, pct)

    def start(self) -> "ResourceSampler":
        self.sample_now()
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)

    def begin_window(self) -> None:
        """Reset the per-bench RSS window (takes an immediate sample)."""
        with self._lock:
            self._window_peak_kb = 0.0
        self.sample_now()

    def end_window(self) -> float:
        """Close the window; returns its peak RSS in KiB."""
        self.sample_now()
        with self._lock:
            return self._window_peak_kb

    @property
    def cpu_pct_mean(self) -> float:
        with self._lock:
            return self._cpu_pct_sum / self._cpu_pct_n if self._cpu_pct_n else 0.0


# -- timing --------------------------------------------------------------------


class BenchTimer:
    """Drop-in for the pytest-benchmark fixture, recording per-iteration cost.

    ``timer(fn, *args)`` calibrates an inner iteration count so one
    round is at least *min_round_s*, runs *warmup* throwaway rounds,
    then *repeats* timed rounds.  ``timer.pedantic(...)`` honours the
    caller's explicit ``rounds``/``iterations`` (the experiment benches
    use ``rounds=1`` — they are internally replicated Monte Carlo
    studies).  Samples are per-iteration wall/CPU seconds.
    """

    def __init__(
        self,
        *,
        repeats: int = 5,
        warmup: int = 1,
        min_round_s: float = 0.005,
        max_iterations: int = 1 << 16,
        profiler: Any | None = None,
    ):
        self.repeats = max(1, repeats)
        self.warmup = max(0, warmup)
        self.min_round_s = min_round_s
        self.max_iterations = max_iterations
        self.profiler = profiler
        self.wall_samples: list[float] = []
        self.cpu_samples: list[float] = []
        self.iterations = 1
        self.rounds = 0

    def _round(self, fn, args, kwargs, k: int):
        c0 = time.process_time()
        t0 = time.perf_counter()
        for _ in range(k):
            result = fn(*args, **kwargs)
        return time.perf_counter() - t0, time.process_time() - c0, result

    def _measure(self, fn, args, kwargs, *, rounds, warmup, iterations, calibrate):
        k = max(1, iterations)
        result = None
        if calibrate and self.min_round_s > 0:
            # Doubling calibration; the probe rounds double as warmup.
            while True:
                wall, _, result = self._round(fn, args, kwargs, k)
                if wall >= self.min_round_s or k >= self.max_iterations:
                    break
                k = min(k * 4, self.max_iterations)
        for _ in range(warmup):
            _, _, result = self._round(fn, args, kwargs, k)
        if self.profiler is not None:
            self.profiler.enable()
        try:
            for _ in range(rounds):
                wall, cpu, result = self._round(fn, args, kwargs, k)
                self.wall_samples.append(wall / k)
                self.cpu_samples.append(cpu / k)
        finally:
            if self.profiler is not None:
                self.profiler.disable()
        self.iterations = k
        self.rounds += rounds
        return result

    def __call__(self, fn: Callable, *args, **kwargs):
        return self._measure(
            fn, args, kwargs,
            rounds=self.repeats, warmup=self.warmup, iterations=1, calibrate=True,
        )

    def pedantic(
        self,
        target: Callable,
        args: Sequence = (),
        kwargs: dict | None = None,
        *,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
        setup: Callable | None = None,
    ):
        if setup is not None:
            setup()
        return self._measure(
            target, tuple(args), kwargs or {},
            rounds=max(1, rounds), warmup=warmup_rounds,
            iterations=iterations, calibrate=False,
        )


# -- discovery -----------------------------------------------------------------


@dataclass
class BenchSpec:
    """One discovered benchmark function (or a reason it cannot run).

    *skip_reason* marks benches the runner legitimately cannot drive
    (unsupported fixtures); *error* marks a broken bench module — an
    exception raised at import — which must surface as a failure, not
    a skip (a typo in a bench file would otherwise silently drop every
    bench in it from the perf trajectory).
    """

    bench_id: str  # "bench_primitives::test_bench_fact32_update"
    file: str  # "bench_primitives.py"
    name: str
    fn: Callable | None = None
    params: tuple[str, ...] = ()
    skip_reason: str | None = None
    error: str | None = None
    traceback: str | None = None


def _import_bench_module(path: str, module_name: str):
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = mod
    spec.loader.exec_module(mod)
    return mod


def discover(bench_dir: str = "benchmarks", pattern: str | None = None) -> list[BenchSpec]:
    """Collect ``test_bench_*`` callables from ``<bench_dir>/bench_*.py``.

    *pattern* is a substring filter, matched first against file stems
    (so ``--filter primitives`` imports only ``bench_primitives.py``)
    and, when no stem matches, against full ``file::function`` ids.
    """
    paths = sorted(glob.glob(os.path.join(bench_dir, "bench_*.py")))
    if not paths:
        raise FileNotFoundError(f"no bench_*.py found under {bench_dir!r}")
    stems = {p: os.path.splitext(os.path.basename(p))[0] for p in paths}
    if pattern is not None and any(pattern in s for s in stems.values()):
        paths = [p for p in paths if pattern in stems[p]]
        pattern = None  # already satisfied at file level
    specs: list[BenchSpec] = []
    # Bench modules do `from conftest import ...`; make the dir importable.
    sys.path.insert(0, os.path.abspath(bench_dir))
    try:
        for path in paths:
            fname = os.path.basename(path)
            stem = stems[path]
            try:
                mod = _import_bench_module(path, f"repro_bench_{stem}")
            except Exception as exc:
                import traceback as tb_mod

                specs.append(BenchSpec(
                    bench_id=f"{stem}", file=fname, name="<module>",
                    error=f"import error: {type(exc).__name__}: {exc}",
                    traceback=tb_mod.format_exc(),
                ))
                continue
            for name in sorted(vars(mod)):
                fn = getattr(mod, name)
                if not name.startswith("test_bench_") or not callable(fn):
                    continue
                bench_id = f"{stem}::{name}"
                if pattern is not None and pattern not in bench_id:
                    continue
                params = tuple(inspect.signature(fn).parameters)
                unsupported = [p for p in params if p not in SUPPORTED_FIXTURES]
                specs.append(BenchSpec(
                    bench_id=bench_id, file=fname, name=name, fn=fn, params=params,
                    skip_reason=(
                        f"unsupported fixtures: {', '.join(unsupported)}"
                        if unsupported else None
                    ),
                ))
    finally:
        sys.path.remove(os.path.abspath(bench_dir))
    return specs


def _experiment_bench_shim(timer: BenchTimer) -> Callable:
    """The ``experiment_bench`` fixture, driven by our timer."""

    def _run(experiment_id: str, seed: int = 0):
        from repro.experiments import run_experiment

        result = timer.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": "smoke", "seed": seed},
            rounds=1,
            iterations=1,
        )
        if "VIOLATED" in result.verdict or "FAILURE" in result.verdict:
            raise AssertionError(f"{experiment_id}: {result.verdict}")
        return result

    return _run


# -- statistics ----------------------------------------------------------------


def _quantile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = q * (len(sorted_vals) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = idx - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def summary_stats(samples: Sequence[float]) -> dict[str, float]:
    """mean/min/max/stdev/p50/p90 over per-iteration samples."""
    vals = sorted(float(v) for v in samples)
    if not vals:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "stdev": 0.0, "p50": 0.0, "p90": 0.0}
    return {
        "n": len(vals),
        "mean": statistics.fmean(vals),
        "min": vals[0],
        "max": vals[-1],
        "stdev": statistics.stdev(vals) if len(vals) > 1 else 0.0,
        "p50": _quantile(vals, 0.50),
        "p90": _quantile(vals, 0.90),
    }


# -- schema --------------------------------------------------------------------

_STAT_KEYS = ("n", "mean", "min", "max", "stdev", "p50", "p90")


def validate_bench_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless *payload* matches the documented schema."""
    problems: list[str] = []

    def need(obj, key, types, where):
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        if not isinstance(obj[key], types):
            problems.append(f"{where}.{key}: expected {types}, got {type(obj[key])}")
            return None
        return obj[key]

    if need(payload, "schema", str, "payload") != SCHEMA:
        problems.append(f"payload.schema: expected {SCHEMA!r}")
    need(payload, "created_at", str, "payload")
    need(payload, "git_rev", (str, type(None)), "payload")
    need(payload, "config", dict, "payload")
    env = need(payload, "env", dict, "payload")
    if env is not None:
        need(env, "python", str, "env")
        need(env, "platform", str, "env")
    need(payload, "resources", dict, "payload")
    benches = need(payload, "benches", list, "payload")
    for i, b in enumerate(benches or []):
        where = f"benches[{i}]"
        need(b, "id", str, where)
        status = need(b, "status", str, where)
        if status not in ("ok", "skipped", "error"):
            problems.append(f"{where}.status: bad value {status!r}")
        if status == "ok":
            for section in ("wall_s", "cpu_s"):
                stats = need(b, section, dict, where)
                if stats is not None:
                    for k in _STAT_KEYS:
                        need(stats, k, (int, float), f"{where}.{section}")
            need(b, "rounds", int, where)
            need(b, "iterations", int, where)
            need(b, "peak_rss_kb", (int, float), where)
    if problems:
        raise ValueError("invalid bench payload:\n  " + "\n  ".join(problems))


# -- runner --------------------------------------------------------------------


def _reset_obs_state() -> None:
    # Bench modules (bench_obs.py) flip global obs state and rely on a
    # pytest autouse fixture to restore it; do the equivalent here.
    runtime.disable()
    set_tracer(None)
    runtime.set_recorder(None)


@dataclass
class _ProgressLines:
    """Minimal start/finish/ETA lines to *stream* (stderr by default)."""

    total: int
    stream: Any = None
    enabled: bool = True
    durations: list[float] = field(default_factory=list)

    def emit(self, text: str) -> None:
        if self.enabled:
            print(text, file=self.stream or sys.stderr, flush=True)

    @contextlib.contextmanager
    def task(self, label: str):
        from repro.experiments.base import eta_seconds, format_duration

        i = len(self.durations) + 1
        self.emit(f"[{i}/{self.total}] {label} ...")
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.durations.append(dt)
            remaining = self.total - len(self.durations)
            eta = eta_seconds(self.durations, remaining)
            tail = f", eta ~{format_duration(eta)}" if remaining else ""
            self.emit(
                f"[{i}/{self.total}] {label} done in {format_duration(dt)}{tail}"
            )


def run_benchmarks(
    *,
    bench_dir: str = "benchmarks",
    pattern: str | None = None,
    repeats: int = 5,
    warmup: int = 1,
    quick: bool = False,
    profile: bool = False,
    out_dir: str = ".",
    run_dir: str | None = None,
    progress: bool = True,
    stream: Any = None,
) -> tuple[str, dict]:
    """Discover, time, and persist benchmarks; returns ``(json_path, payload)``.

    *quick* drops calibration and warmup (one iteration per round) for
    smoke/CI use.  *profile* wraps each bench's timed rounds in
    ``cProfile`` and drops a ``<bench>.pstats`` per bench into the run
    dir (timings are still recorded, but treat them as indicative —
    the profiler taxes every function call).
    """
    specs = discover(bench_dir, pattern)
    runnable = [s for s in specs if s.skip_reason is None and s.error is None]
    ts = time.strftime("%Y%m%d-%H%M%S")
    rev = git_revision()
    run_dir = run_dir or os.path.join("runs", f"bench-{ts}")
    min_round_s = 0.0 if quick else 0.005
    warmup = 0 if quick else warmup

    rec = RunRecorder(run_dir, meta={"kind": "bench", "filter": pattern})
    sampler = ResourceSampler(recorder=rec).start()
    lines = _ProgressLines(total=len(runnable), enabled=progress, stream=stream)
    epoch = time.perf_counter()
    records: list[dict] = []
    n_err = 0
    try:
        for spec in specs:
            if spec.error is not None:
                # A broken bench module is a failure of the perf suite,
                # not a skip: report it loudly and fail the run status.
                n_err += 1
                lines.emit(f"ERROR {spec.bench_id}: {spec.error}")
                if spec.traceback:
                    lines.emit(spec.traceback.rstrip())
                records.append({
                    "id": spec.bench_id, "file": spec.file, "name": spec.name,
                    "status": "error", "error": spec.error,
                    "traceback": spec.traceback,
                })
                continue
            if spec.skip_reason is not None:
                records.append({
                    "id": spec.bench_id, "file": spec.file, "name": spec.name,
                    "status": "skipped", "skip_reason": spec.skip_reason,
                })
                continue
            profiler = None
            if profile:
                import cProfile

                profiler = cProfile.Profile()
            timer = BenchTimer(
                repeats=repeats, warmup=warmup,
                min_round_s=min_round_s, profiler=profiler,
            )
            kwargs: dict[str, Any] = {}
            for p in spec.params:
                if p == "benchmark":
                    kwargs[p] = timer
                elif p == "experiment_bench":
                    kwargs[p] = _experiment_bench_shim(timer)
                elif p == "tmp_path":
                    kwargs[p] = Path(tempfile.mkdtemp(prefix="repro-bench-"))
            record: dict[str, Any] = {
                "id": spec.bench_id, "file": spec.file, "name": spec.name,
            }
            sampler.begin_window()
            t0 = time.perf_counter()
            try:
                with lines.task(spec.bench_id):
                    # Benches print result tables; keep stdout for our report.
                    with contextlib.redirect_stdout(io.StringIO()):
                        spec.fn(**kwargs)
                record["status"] = "ok"
            except Exception as exc:  # noqa: BLE001 - one bench must not kill the run
                n_err += 1
                record["status"] = "error"
                record["error"] = f"{type(exc).__name__}: {exc}"
            finally:
                _reset_obs_state()
            dur = time.perf_counter() - t0
            peak_kb = sampler.end_window()
            if record["status"] == "ok":
                record.update({
                    "rounds": timer.rounds,
                    "iterations": timer.iterations,
                    "wall_s": {
                        **summary_stats(timer.wall_samples),
                        "samples": [
                            round(v, 9)
                            for v in timer.wall_samples[:MAX_PERSISTED_SAMPLES]
                        ],
                    },
                    "cpu_s": summary_stats(timer.cpu_samples),
                    "peak_rss_kb": peak_kb,
                })
            if profiler is not None:
                pstats_path = os.path.join(
                    run_dir, spec.bench_id.replace("::", "__") + ".pstats"
                )
                profiler.dump_stats(pstats_path)
                record["pstats"] = os.path.basename(pstats_path)
            rec.emit({
                "type": "span", "name": f"bench/{spec.bench_id}",
                "depth": 0, "parent": None,
                "t": round(t0 - epoch, 9), "dur_s": round(dur, 9),
            })
            records.append(record)
    finally:
        sampler.stop()

    payload = {
        "schema": SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_rev": rev,
        "config": {
            "bench_dir": bench_dir, "filter": pattern, "repeats": repeats,
            "warmup": warmup, "quick": quick, "profile": profile,
        },
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "numpy": _numpy_version(),
        },
        "resources": {
            "peak_rss_kb": sampler.peak_rss_kb,
            "cpu_pct_mean": round(sampler.cpu_pct_mean, 3),
            "samples": sampler.samples,
        },
        "run_dir": run_dir,
        "benches": records,
    }
    validate_bench_payload(payload)
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, f"BENCH_{ts}_{(rev or 'unknown')[:10]}.json")
    with open(json_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    rec.set_meta(bench_json=json_path, benches=len(records), errors=n_err)
    rec.finish(status="ok" if n_err == 0 else "error")
    return json_path, payload


def _numpy_version() -> str | None:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        return None


def render_bench_payload(payload: dict) -> str:
    """One summary table over a bench artifact (the ``bench run`` stdout)."""
    from repro.utils.tables import Table

    t = Table(
        ["bench", "status", "rounds×iters", "wall mean", "p50", "p90", "peak rss"],
        title=f"bench artifact ({payload.get('git_rev') or 'no git rev'})",
    )
    for b in payload.get("benches", []):
        if b.get("status") != "ok":
            t.add_row([b["id"], b["status"], "-", "-", "-", "-", "-"])
            continue
        w = b["wall_s"]
        t.add_row([
            b["id"], "ok", f"{b['rounds']}×{b['iterations']}",
            _fmt_s(w["mean"]), _fmt_s(w["p50"]), _fmt_s(w["p90"]),
            f"{b['peak_rss_kb'] / 1024.0:.1f} MB",
        ])
    return t.render()


def _fmt_s(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
