"""Run-artifact recording: ``runs/<id>/events.jsonl`` + ``meta.json``.

A :class:`RunRecorder` captures per-checkpoint time series (max load,
empirical TV distance, coalescence fraction, coupling distance) and
trace events into a structured run directory:

* ``events.jsonl`` — one JSON object per line: ``{"type": "sample",
  "series": ..., "step": ..., "value": ...}`` for time-series points
  and ``{"type": "span", ...}`` for stage timings (see
  :mod:`repro.obs.trace`);
* ``meta.json`` — seed, scale, config, git revision, interpreter and
  numpy versions, wall-clock bounds, final metrics snapshot.

:func:`observe_run` is the one-stop context manager the experiment
harness and CLI use: it enables observability, installs a recorder and
a JSONL-sinked tracer, scopes a fresh metrics registry to the run, and
finalizes the artifact on exit (also on error).  :func:`load_run`
reads an artifact back for reports and tests.
"""

from __future__ import annotations

import atexit
import json
import os
import platform
import shutil
import signal
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import runtime
from repro.obs.metrics import scoped_registry
from repro.obs.timeseries import (
    HEARTBEAT_FILE,
    HEARTBEAT_SCHEMA,
    TIMESERIES_FILE,
    TIMESERIES_SCHEMA,
    load_heartbeats,
    load_timeseries,
)
from repro.obs.trace import Tracer, set_tracer

__all__ = [
    "RunRecorder",
    "RunArtifact",
    "observe_run",
    "observe_resumed_run",
    "load_run",
    "git_revision",
    "gc_runs",
]

#: Per-series cap on persisted samples; overflow is counted, not stored,
#: so a runaway trajectory cannot blow up the artifact.
MAX_SAMPLES_PER_SERIES = 4096

#: Per-series cap on persisted timeseries points (probe decimation keeps
#: real runs far below this; the cap bounds misconfigured ones).
MAX_POINTS_PER_SERIES = 16384


def git_revision(start_dir: str | None = None) -> str | None:
    """Best-effort git HEAD revision, reading ``.git`` directly (no subprocess).

    Walks up from *start_dir* (default: this file's repo) to find a
    ``.git`` directory; returns ``None`` when there is none or the ref
    cannot be resolved.
    """
    d = os.path.abspath(start_dir or os.path.dirname(__file__))
    while True:
        git_dir = os.path.join(d, ".git")
        if os.path.isdir(git_dir):
            break
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent
    try:
        with open(os.path.join(git_dir, "HEAD")) as f:
            head = f.read().strip()
        if not head.startswith("ref:"):
            return head or None
        ref = head.split(None, 1)[1]
        ref_path = os.path.join(git_dir, *ref.split("/"))
        if os.path.exists(ref_path):
            with open(ref_path) as f:
                return f.read().strip() or None
        packed = os.path.join(git_dir, "packed-refs")
        if os.path.exists(packed):
            with open(packed) as f:
                for line in f:
                    line = line.strip()
                    if line.endswith(ref) and not line.startswith("#"):
                        return line.split()[0]
    except OSError:
        return None
    return None


class RunRecorder:
    """Streams run events to ``<run_dir>/events.jsonl`` and keeps them in memory."""

    def __init__(
        self,
        run_dir: str,
        *,
        meta: dict | None = None,
        _resume: dict | None = None,
    ):
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.meta: dict[str, Any] = dict(meta or {})
        self.series: dict[str, tuple[list[int], list[float]]] = {}
        self.events: list[dict] = []
        self.dropped: dict[str, int] = {}
        self.points: dict[str, int] = {}
        self.monitors: list[dict] = []
        self._started_wall = time.time()
        self._started_perf = time.perf_counter()
        self._ts_file: Any = None  # lazily opened on the first point
        self._ts_header: dict | None = None
        #: Every timeseries record with its lane key (-1 = the parent),
        #: kept so :meth:`finish` can canonicalize a multi-lane stream.
        self._ts_records: list[tuple[int, dict]] = []
        self._hb_file: Any = None  # lazily opened on the first heartbeat
        self._hb_append = False
        #: Forces an events.jsonl rewrite at finish (set by lane
        #: truncation, which edits the in-memory list past the file).
        self._events_dirty = False
        self._closed = False
        # Background producers (the bench resource sampler) emit from
        # their own thread; serialize writes against the main thread.
        self._write_lock = threading.Lock()
        if _resume is None:
            self._file = open(os.path.join(run_dir, "events.jsonl"), "w")
        else:
            self._load_resume(_resume)
        self._install_exit_flush()

    @classmethod
    def resume(
        cls, run_dir: str, *, meta: dict | None = None, keep: dict | None = None
    ) -> "RunRecorder":
        """Reopen an interrupted run's artifact for append-after-resume.

        Existing streams are parsed tolerantly (a line truncated by the
        kill is dropped), the post-checkpoint tail is truncated per
        *keep*, the files are rewritten in place, and the recorder then
        appends as usual — so the finished artifact is byte-identical
        to an uninterrupted run's.

        *keep* fields (all optional):

        * ``"events"`` — keep only the first N ``events.jsonl`` lines
          (single-lane runs: the parent checkpoint's event cursor);
        * ``"monitors"`` — ``{lane: count}`` monitor-event quotas
          (pooled fleets: per-shard cursors; lanes absent from the map
          are dropped entirely and replay);
        * ``"lanes"`` — ``{lane: count}`` ``timeseries.jsonl`` record
          quotas, same convention (lane ``-1`` is the parent).

        ``worker_lost`` monitor events are always dropped: they
        describe the attempt being resumed, not the resumed run.
        """
        return cls(run_dir, meta=meta, _resume=dict(keep or {}))

    def _load_resume(self, keep: dict) -> None:
        """Parse + truncate + rewrite the streams (constructor helper)."""
        events_path = os.path.join(self.run_dir, "events.jsonl")
        parsed: list[dict] = []
        if os.path.exists(events_path):
            with open(events_path) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # the kill's torn tail line
                    if isinstance(event, dict):
                        parsed.append(event)
        events_keep = keep.get("events")
        monitor_quota = keep.get("monitors")
        kept: list[dict] = []
        if events_keep is not None:
            for event in parsed[: int(events_keep)]:
                if event.get("monitor") != "worker_lost":
                    kept.append(event)
        else:
            remaining = {
                int(k): int(v) for k, v in (monitor_quota or {}).items()
            }
            for event in parsed:
                if event.get("type") != "monitor":
                    kept.append(event)
                    continue
                if event.get("monitor") == "worker_lost":
                    continue
                lane = int(event.get("worker", -1))
                if remaining.get(lane, 0) > 0:
                    remaining[lane] -= 1
                    kept.append(event)
        self.events = kept
        self.monitors = [e for e in kept if e.get("type") == "monitor"]
        for event in kept:
            if event.get("type") == "sample":
                steps, values = self.series.setdefault(
                    event["series"], ([], [])
                )
                steps.append(int(event["step"]))
                values.append(float(event["value"]))
        self._file = open(events_path, "w")
        for event in kept:
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._file.flush()
        # -- timeseries.jsonl --------------------------------------------------
        ts_path = os.path.join(self.run_dir, TIMESERIES_FILE)
        lane_quota = keep.get("lanes")
        if os.path.exists(ts_path):
            records: list[tuple[int, dict]] = []
            lane_seen: dict[int, int] = {}
            with open(ts_path) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail
                    if not isinstance(record, dict):
                        continue
                    if record.get("type") == "header":
                        self._ts_header = record
                        continue
                    if record.get("monitor") == "worker_lost":
                        continue
                    lane = int(record.get("worker", -1))
                    seen = lane_seen.get(lane, 0)
                    lane_seen[lane] = seen + 1
                    if lane_quota is not None and seen >= int(
                        lane_quota.get(lane, lane_quota.get(str(lane), 0))
                    ):
                        continue
                    records.append((lane, record))
            self._ts_records = records
            for lane, record in records:
                if record.get("type") != "point":
                    continue
                key = (
                    record["series"]
                    if lane < 0
                    else f"{record['series']}#w{lane}"
                )
                self.points[key] = self.points.get(key, 0) + 1
            if self._ts_header is None and not records:
                # Nothing parseable survived (killed before the header
                # landed): start the stream from scratch, lazily, so
                # the header picks up the resumed run's probe interval.
                os.remove(ts_path)
            else:
                if self._ts_header is None:  # records without a header
                    self._ts_header = {
                        "type": "header",
                        "schema": TIMESERIES_SCHEMA,
                        "probe_every": runtime.probe_interval(),
                    }
                self._ts_file = open(ts_path, "w")
                self._ts_file.write(
                    json.dumps(self._ts_header, separators=(",", ":")) + "\n"
                )
                for _, record in self._ts_records:
                    self._ts_file.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
                self._ts_file.flush()
        self._hb_append = True

    # -- interrupted-run safety -----------------------------------------------

    def _install_exit_flush(self) -> None:
        """Keep partial artifacts on interrupt: atexit + SIGINT flush.

        A run killed mid-flight used to lose the buffered tail of
        ``events.jsonl``/``timeseries.jsonl`` (and its ``meta.json``
        entirely).  The atexit hook finalizes the artifact with status
        ``interrupted`` if nobody called :meth:`finish`; the SIGINT
        handler flushes the streams before chaining to the previous
        handler (normally ``KeyboardInterrupt``, whose unwind runs the
        regular finalization).  Both are torn down in :meth:`finish`.
        """
        atexit.register(self._atexit_finish)
        self._prev_sigint: Any = None
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            prev = signal.getsignal(signal.SIGINT)

            def _flush_then_chain(signum, frame):
                self.flush()
                if callable(prev):
                    prev(signum, frame)
                else:  # pragma: no cover - SIG_IGN/SIG_DFL handler installed
                    raise KeyboardInterrupt
            signal.signal(signal.SIGINT, _flush_then_chain)
            self._prev_sigint = prev
        except (ValueError, OSError):  # pragma: no cover - exotic signal state
            self._prev_sigint = None

    def _atexit_finish(self) -> None:
        """Interpreter exiting with the recorder still open: finalize."""
        self.finish(status="interrupted")

    def _teardown_exit_flush(self) -> None:
        try:
            atexit.unregister(self._atexit_finish)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
        if self._prev_sigint is not None:
            try:
                if threading.current_thread() is threading.main_thread():
                    signal.signal(signal.SIGINT, self._prev_sigint)
            except (ValueError, OSError):  # pragma: no cover
                pass
            self._prev_sigint = None

    def flush(self) -> None:
        """Flush the open JSONL streams to disk (safe from handlers)."""
        with self._write_lock:
            if self._closed:
                return
            self._file.flush()
            if self._ts_file is not None:
                self._ts_file.flush()
            if self._hb_file is not None:
                self._hb_file.flush()

    # -- event capture --------------------------------------------------------

    def emit(self, event: dict) -> None:
        """Append one raw event (also the tracer's sink); thread-safe.

        Events are flushed line-by-line: they are checkpoint-rate (span
        closes, decimated samples), so the flush is cheap, and it makes
        artifacts of killed runs lossless up to the last event.
        """
        with self._write_lock:
            if self._closed:
                return
            self.events.append(event)
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._file.flush()

    def _ts_write(self, record: dict, *, worker: int | None = None) -> None:
        """Append one line to ``timeseries.jsonl`` (caller holds the lock)."""
        if self._ts_file is None:
            self._ts_file = open(os.path.join(self.run_dir, TIMESERIES_FILE), "w")
            self._ts_header = {"type": "header", "schema": TIMESERIES_SCHEMA,
                               "probe_every": runtime.probe_interval()}
            self._ts_file.write(
                json.dumps(self._ts_header, separators=(",", ":")) + "\n"
            )
        self._ts_records.append((-1 if worker is None else int(worker), record))
        self._ts_file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._ts_file.flush()

    def record_point(
        self, series: str, step: int, stats: dict, *, worker: int | None = None
    ) -> None:
        """Record one probe point into ``timeseries.jsonl`` (capped per lane).

        *worker* tags the point with its fleet lane (the shard index a
        telemetry-bus message came from); the per-series point cap is
        keyed per lane so one chatty shard cannot starve the others.
        """
        lane = series if worker is None else f"{series}#w{int(worker)}"
        with self._write_lock:
            if self._closed:
                return
            count = self.points.get(lane, 0)
            if count >= MAX_POINTS_PER_SERIES:
                key = f"timeseries/{lane}"
                self.dropped[key] = self.dropped.get(key, 0) + 1
                return
            self.points[lane] = count + 1
            record = {"type": "point", "series": series, "step": int(step),
                      "stats": stats}
            if worker is not None:
                record["worker"] = int(worker)
            self._ts_write(record, worker=worker)

    def record_monitor(self, event: dict, *, worker: int | None = None) -> None:
        """Record one recovery-monitor event (both streams; thread-safe)."""
        event = {**event, "type": "monitor"}
        if worker is not None:
            event["worker"] = int(worker)
        self.monitors.append(event)
        self.emit(event)
        with self._write_lock:
            if self._closed:
                return
            self._ts_write(event, worker=worker)

    def record_heartbeat(self, worker: int, payload: dict) -> None:
        """Record one worker liveness sample into ``heartbeats.jsonl``.

        Heartbeats carry wall-clock timestamps and RSS, so they live in
        their own stream: ``timeseries.jsonl`` stays a deterministic
        function of the seed, ``heartbeats.jsonl`` is explicitly not.
        """
        self._hb_write(
            {"type": "heartbeat", "worker": int(worker), "at": time.time(),
             **payload}
        )

    def record_bye(self, worker: int) -> None:
        """Record a worker's clean-exit marker (heartbeat stream)."""
        self._hb_write({"type": "bye", "worker": int(worker), "at": time.time()})

    def _hb_write(self, record: dict) -> None:
        with self._write_lock:
            if self._closed:
                return
            if self._hb_file is None:
                path = os.path.join(self.run_dir, HEARTBEAT_FILE)
                # Resumed runs append: heartbeats are wall-clock truth,
                # so the interrupted attempt's beats stay on record.
                append = (
                    self._hb_append
                    and os.path.exists(path)
                    and os.path.getsize(path) > 0
                )
                self._hb_file = open(path, "a" if append else "w")
                if not append:
                    header = {"type": "header", "schema": HEARTBEAT_SCHEMA}
                    self._hb_file.write(
                        json.dumps(header, separators=(",", ":")) + "\n"
                    )
            self._hb_file.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._hb_file.flush()

    def record(self, series: str, step: int, value: float) -> None:
        """Record one time-series sample (capped per series, see module doc)."""
        steps, values = self.series.setdefault(series, ([], []))
        if len(steps) >= MAX_SAMPLES_PER_SERIES:
            self.dropped[series] = self.dropped.get(series, 0) + 1
            return
        step = int(step)
        value = float(value)
        steps.append(step)
        values.append(value)
        self.emit({"type": "sample", "series": series, "step": step, "value": value})

    def set_meta(self, **kv) -> None:
        """Merge key/value pairs into the run metadata."""
        self.meta.update(kv)

    # -- checkpoint/resume cursors ---------------------------------------------

    def stream_state(self) -> dict:
        """Stream cursors for a checkpoint: what a resume must keep.

        ``events`` counts ``events.jsonl`` lines, ``lanes`` counts
        ``timeseries.jsonl`` records per lane (-1 = parent), and
        ``monitors`` counts monitor events per lane — exactly the
        *keep* argument :meth:`resume` consumes.
        """
        with self._write_lock:
            lanes: dict[int, int] = {}
            for lane, _ in self._ts_records:
                lanes[lane] = lanes.get(lane, 0) + 1
            monitors: dict[int, int] = {}
            for event in self.events:
                if event.get("type") == "monitor":
                    lane = int(event.get("worker", -1))
                    monitors[lane] = monitors.get(lane, 0) + 1
            return {
                "events": len(self.events),
                "lanes": lanes,
                "monitors": monitors,
            }

    def truncate_lane(self, worker: int, *, records: int, monitors: int) -> None:
        """Drop a lane's tail past its shard checkpoint (worker restart).

        Called by the fleet runner before re-dispatching a lane whose
        worker died: everything the dead worker streamed after its last
        committed shard checkpoint will be re-emitted by the replay, so
        the in-memory copies are trimmed to the checkpoint's cursors
        (``worker_lost`` markers for the lane go too).  The files are
        reconciled at :meth:`finish` by the canonical rewrites.
        """
        lane = int(worker)
        with self._write_lock:
            kept_ts: list[tuple[int, dict]] = []
            count = 0
            for w, record in self._ts_records:
                if w != lane:
                    kept_ts.append((w, record))
                    continue
                if record.get("monitor") == "worker_lost":
                    continue
                if count < records:
                    kept_ts.append((w, record))
                    count += 1
            self._ts_records = kept_ts
            points: dict[str, int] = {}
            for w, record in kept_ts:
                if record.get("type") != "point":
                    continue
                key = (
                    record["series"] if w < 0 else f"{record['series']}#w{w}"
                )
                points[key] = points.get(key, 0) + 1
            self.points = points
            kept_events: list[dict] = []
            mcount = 0
            for event in self.events:
                if (
                    event.get("type") == "monitor"
                    and int(event.get("worker", -1)) == lane
                ):
                    if event.get("monitor") == "worker_lost":
                        continue
                    if mcount < monitors:
                        kept_events.append(event)
                        mcount += 1
                    continue
                kept_events.append(event)
            self.events = kept_events
            self.monitors = [
                e for e in kept_events if e.get("type") == "monitor"
            ]
            self._events_dirty = True

    # -- finalization ----------------------------------------------------------

    def _canonicalize_timeseries(self) -> None:
        """Rewrite ``timeseries.jsonl`` in lane order (caller holds the lock).

        Live streaming interleaves lanes in queue-arrival order, which
        is wall-clock dependent.  Each lane's *own* records arrive in
        emission order (per-producer FIFO), so a stable sort on the
        lane key — parent records first, then worker 0, 1, ... — makes
        the finished file a byte-identical function of the seed.  A
        single-lane stream is already canonical and is left untouched,
        byte-for-byte.
        """
        if self._ts_file is None or all(w < 0 for w, _ in self._ts_records):
            return
        ordered = sorted(self._ts_records, key=lambda pair: pair[0])
        path = os.path.join(self.run_dir, TIMESERIES_FILE)
        with open(path, "w") as f:
            f.write(json.dumps(self._ts_header, separators=(",", ":")) + "\n")
            for _, record in ordered:
                f.write(json.dumps(record, separators=(",", ":")) + "\n")

    def _canonicalize_events(self) -> None:
        """Rewrite ``events.jsonl`` in lane order (caller holds the lock).

        Monitor events from a pooled fleet land in queue-arrival order,
        which is wall-clock dependent — the same nondeterminism the
        timeseries rewrite fixes.  A stable sort on the worker tag
        (parent events, tagged -1, first) makes the finished file a
        function of the seed.  Single-lane streams are untouched unless
        a lane truncation made the in-memory list the only truth.
        """
        multi_lane = any("worker" in e for e in self.events)
        if not (multi_lane or self._events_dirty):
            return
        ordered = sorted(
            self.events, key=lambda e: int(e.get("worker", -1))
        )
        path = os.path.join(self.run_dir, "events.jsonl")
        with open(path, "w") as f:
            for event in ordered:
                f.write(json.dumps(event, separators=(",", ":")) + "\n")

    def finish(self, *, status: str = "ok", metrics: dict | None = None) -> None:
        """Flush events and write ``meta.json`` (idempotent)."""
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()
            if self._ts_file is not None:
                self._ts_file.close()
            if self._hb_file is not None:
                self._hb_file.close()
            self._canonicalize_timeseries()
            self._canonicalize_events()
        self._teardown_exit_flush()
        meta = {
            "status": status,
            "started_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime(self._started_wall)
            ),
            "duration_s": round(time.perf_counter() - self._started_perf, 6),
            "git_rev": git_revision(),
            "python": platform.python_version(),
            "argv": sys.argv,
            "series": {
                name: len(steps) for name, (steps, _) in sorted(self.series.items())
            },
            "dropped_samples": dict(sorted(self.dropped.items())),
        }
        if self.points:
            meta["timeseries"] = dict(sorted(self.points.items()))
        if self.monitors:
            meta["monitor_events"] = len(self.monitors)
        try:
            import numpy

            meta["numpy"] = numpy.__version__
        except Exception:  # pragma: no cover - numpy is a hard dep in practice
            pass
        if metrics is not None:
            meta["metrics"] = metrics
        meta.update(self.meta)
        path = os.path.join(self.run_dir, "meta.json")
        with open(path, "w") as f:
            json.dump(meta, f, indent=2, sort_keys=True)
            f.write("\n")

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(status="ok" if exc_type is None else "error")
        return False


@dataclass
class RunArtifact:
    """A run directory read back into memory (see :func:`load_run`)."""

    run_dir: str
    meta: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    #: Parsed ``timeseries.jsonl`` records (header + points + monitors).
    timeseries: list = field(default_factory=list)
    #: Parsed ``heartbeats.jsonl`` records (worker liveness; wall-clock).
    heartbeats: list = field(default_factory=list)
    #: Lines of events.jsonl / timeseries.jsonl that failed to parse
    #: (truncated run).
    corrupt_lines: int = 0

    @property
    def spans(self) -> list[dict]:
        """The span events, in completion order."""
        return [e for e in self.events if e.get("type") == "span"]

    @property
    def monitor_events(self) -> list[dict]:
        """Recovery-monitor events (from either stream, deduplicated)."""
        seen: set[tuple] = set()
        out: list[dict] = []
        for e in self.events + self.timeseries:
            if e.get("type") != "monitor":
                continue
            key = (e.get("monitor"), e.get("series"), e.get("step"),
                   e.get("worker"))
            if key in seen:
                continue
            seen.add(key)
            out.append(e)
        return out

    @property
    def points(self) -> dict[str, list[dict]]:
        """Timeseries points regrouped as ``series -> [point, ...]``."""
        out: dict[str, list[dict]] = {}
        for e in self.timeseries:
            if e.get("type") == "point" and "series" in e:
                out.setdefault(e["series"], []).append(e)
        return out

    @property
    def workers(self) -> list[int]:
        """Worker lanes seen in the timeseries or heartbeat streams."""
        lanes = {
            e["worker"]
            for e in self.timeseries + self.heartbeats
            if isinstance(e.get("worker"), int)
        }
        return sorted(lanes)

    @property
    def series(self) -> dict[str, tuple[list[int], list[float]]]:
        """Sample events regrouped as ``name -> (steps, values)``."""
        out: dict[str, tuple[list[int], list[float]]] = {}
        for e in self.events:
            if e.get("type") != "sample":
                continue
            steps, values = out.setdefault(e["series"], ([], []))
            steps.append(int(e["step"]))
            values.append(float(e["value"]))
        return out


def load_run(run_dir: str) -> RunArtifact:
    """Read a run artifact directory written by :class:`RunRecorder`.

    Tolerates partial artifacts from crashed or killed runs: a corrupt
    ``meta.json`` or truncated ``events.jsonl`` lines are counted in
    ``corrupt_lines`` and skipped, never raised — the summarize report
    degrades to whatever survived.
    """
    meta_path = os.path.join(run_dir, "meta.json")
    events_path = os.path.join(run_dir, "events.jsonl")
    if not os.path.exists(meta_path) and not os.path.exists(events_path):
        raise FileNotFoundError(f"{run_dir!r} holds no meta.json / events.jsonl")
    meta: dict = {}
    corrupt = 0
    if os.path.exists(meta_path):
        try:
            with open(meta_path) as f:
                meta = json.load(f)
        except (json.JSONDecodeError, OSError):
            corrupt += 1
    events: list[dict] = []
    if os.path.exists(events_path):
        with open(events_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if isinstance(event, dict):
                    events.append(event)
                else:
                    corrupt += 1
    timeseries, ts_corrupt = load_timeseries(run_dir)
    heartbeats, hb_corrupt = load_heartbeats(run_dir)
    return RunArtifact(
        run_dir=run_dir,
        meta=meta,
        events=events,
        timeseries=timeseries,
        heartbeats=heartbeats,
        corrupt_lines=corrupt + ts_corrupt + hb_corrupt,
    )


def gc_runs(
    runs_dir: str = "runs", *, keep: int = 10, apply: bool = False
) -> dict[str, Any]:
    """Prune old run directories under *runs_dir*, newest-*keep* survive.

    Only directories that look like run artifacts (holding a
    ``meta.json`` or ``events.jsonl``) are candidates — anything else
    under *runs_dir* is left alone.  Age is directory mtime.  Dry-run
    unless *apply*; returns ``{"kept": [...], "pruned": [...],
    "applied": bool}`` with paths sorted newest first.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    candidates: list[tuple[float, str]] = []
    if os.path.isdir(runs_dir):
        for name in os.listdir(runs_dir):
            path = os.path.join(runs_dir, name)
            if not os.path.isdir(path):
                continue
            if not (
                os.path.exists(os.path.join(path, "meta.json"))
                or os.path.exists(os.path.join(path, "events.jsonl"))
            ):
                continue
            candidates.append((os.path.getmtime(path), path))
    candidates.sort(reverse=True)
    kept = [p for _, p in candidates[:keep]]
    pruned = [p for _, p in candidates[keep:]]
    if apply:
        for path in pruned:
            shutil.rmtree(path, ignore_errors=True)
    return {"kept": kept, "pruned": pruned, "applied": apply}


@contextmanager
def observe_run(
    run_dir: str,
    *,
    meta: dict | None = None,
    trace: bool = True,
    probe_every: int = 0,
) -> Iterator[RunRecorder]:
    """Observe one run: enable instrumentation, record into *run_dir*.

    Installs a :class:`RunRecorder` as the active recorder, a tracer
    whose span events stream into ``events.jsonl`` (when *trace*), and
    a fresh scoped metrics registry whose final snapshot lands in
    ``meta.json``.  *probe_every* > 0 additionally turns on per-step
    chain probes at that decimation (see :mod:`repro.obs.probes`),
    streaming ``timeseries.jsonl`` points.  All global state is
    restored on exit, and the artifact is finalized even if the body
    raises.
    """
    rec = RunRecorder(run_dir, meta=meta)
    yield from _observe(rec, trace=trace, probe_every=probe_every)


@contextmanager
def observe_resumed_run(
    run_dir: str,
    *,
    meta: dict | None = None,
    trace: bool = False,
    probe_every: int = 0,
    keep: dict | None = None,
    metrics: dict | None = None,
) -> Iterator[RunRecorder]:
    """:func:`observe_run` for a run resumed from a checkpoint.

    The recorder reopens the interrupted artifact via
    :meth:`RunRecorder.resume` (truncating the post-checkpoint tail per
    *keep*), and the scoped metrics registry is pre-seeded with the
    checkpoint's *metrics* snapshot — so the finished artifact, its
    series counts, and its counter totals are byte-identical to an
    uninterrupted run's.
    """
    rec = RunRecorder.resume(run_dir, meta=meta, keep=keep)
    rec.set_meta(resumed=True)
    yield from _observe(
        rec, trace=trace, probe_every=probe_every, metrics=metrics
    )


def _observe(
    rec: RunRecorder,
    *,
    trace: bool,
    probe_every: int,
    metrics: dict | None = None,
) -> Iterator[RunRecorder]:
    """Shared switch dance of the fresh and resumed observers."""
    was_enabled = runtime.enabled()
    runtime.enable()
    prev_rec = runtime.set_recorder(rec)
    prev_probe = runtime.set_probe_interval(probe_every)
    prev_tracer = set_tracer(Tracer(sink=rec.emit)) if trace else None
    status = "error"
    with scoped_registry() as reg:
        if metrics:
            reg.merge(metrics)
        try:
            yield rec
            status = "ok"
        finally:
            if trace:
                set_tracer(prev_tracer)
            runtime.set_probe_interval(prev_probe)
            runtime.set_recorder(prev_rec)
            if not was_enabled:
                runtime.disable()
            rec.finish(status=status, metrics=reg.snapshot())
