"""Run-artifact recording: ``runs/<id>/events.jsonl`` + ``meta.json``.

A :class:`RunRecorder` captures per-checkpoint time series (max load,
empirical TV distance, coalescence fraction, coupling distance) and
trace events into a structured run directory:

* ``events.jsonl`` — one JSON object per line: ``{"type": "sample",
  "series": ..., "step": ..., "value": ...}`` for time-series points
  and ``{"type": "span", ...}`` for stage timings (see
  :mod:`repro.obs.trace`);
* ``meta.json`` — seed, scale, config, git revision, interpreter and
  numpy versions, wall-clock bounds, final metrics snapshot.

:func:`observe_run` is the one-stop context manager the experiment
harness and CLI use: it enables observability, installs a recorder and
a JSONL-sinked tracer, scopes a fresh metrics registry to the run, and
finalizes the artifact on exit (also on error).  :func:`load_run`
reads an artifact back for reports and tests.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import runtime
from repro.obs.metrics import scoped_registry
from repro.obs.trace import Tracer, set_tracer

__all__ = [
    "RunRecorder",
    "RunArtifact",
    "observe_run",
    "load_run",
    "git_revision",
    "gc_runs",
]

#: Per-series cap on persisted samples; overflow is counted, not stored,
#: so a runaway trajectory cannot blow up the artifact.
MAX_SAMPLES_PER_SERIES = 4096


def git_revision(start_dir: str | None = None) -> str | None:
    """Best-effort git HEAD revision, reading ``.git`` directly (no subprocess).

    Walks up from *start_dir* (default: this file's repo) to find a
    ``.git`` directory; returns ``None`` when there is none or the ref
    cannot be resolved.
    """
    d = os.path.abspath(start_dir or os.path.dirname(__file__))
    while True:
        git_dir = os.path.join(d, ".git")
        if os.path.isdir(git_dir):
            break
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent
    try:
        with open(os.path.join(git_dir, "HEAD")) as f:
            head = f.read().strip()
        if not head.startswith("ref:"):
            return head or None
        ref = head.split(None, 1)[1]
        ref_path = os.path.join(git_dir, *ref.split("/"))
        if os.path.exists(ref_path):
            with open(ref_path) as f:
                return f.read().strip() or None
        packed = os.path.join(git_dir, "packed-refs")
        if os.path.exists(packed):
            with open(packed) as f:
                for line in f:
                    line = line.strip()
                    if line.endswith(ref) and not line.startswith("#"):
                        return line.split()[0]
    except OSError:
        return None
    return None


class RunRecorder:
    """Streams run events to ``<run_dir>/events.jsonl`` and keeps them in memory."""

    def __init__(self, run_dir: str, *, meta: dict | None = None):
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.meta: dict[str, Any] = dict(meta or {})
        self.series: dict[str, tuple[list[int], list[float]]] = {}
        self.events: list[dict] = []
        self.dropped: dict[str, int] = {}
        self._started_wall = time.time()
        self._started_perf = time.perf_counter()
        self._file = open(os.path.join(run_dir, "events.jsonl"), "w")
        self._closed = False
        # Background producers (the bench resource sampler) emit from
        # their own thread; serialize writes against the main thread.
        self._write_lock = threading.Lock()

    # -- event capture --------------------------------------------------------

    def emit(self, event: dict) -> None:
        """Append one raw event (also the tracer's sink); thread-safe."""
        with self._write_lock:
            if self._closed:
                return
            self.events.append(event)
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    def record(self, series: str, step: int, value: float) -> None:
        """Record one time-series sample (capped per series, see module doc)."""
        steps, values = self.series.setdefault(series, ([], []))
        if len(steps) >= MAX_SAMPLES_PER_SERIES:
            self.dropped[series] = self.dropped.get(series, 0) + 1
            return
        step = int(step)
        value = float(value)
        steps.append(step)
        values.append(value)
        self.emit({"type": "sample", "series": series, "step": step, "value": value})

    def set_meta(self, **kv) -> None:
        """Merge key/value pairs into the run metadata."""
        self.meta.update(kv)

    # -- finalization ----------------------------------------------------------

    def finish(self, *, status: str = "ok", metrics: dict | None = None) -> None:
        """Flush events and write ``meta.json`` (idempotent)."""
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            self._file.close()
        meta = {
            "status": status,
            "started_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime(self._started_wall)
            ),
            "duration_s": round(time.perf_counter() - self._started_perf, 6),
            "git_rev": git_revision(),
            "python": platform.python_version(),
            "argv": sys.argv,
            "series": {
                name: len(steps) for name, (steps, _) in sorted(self.series.items())
            },
            "dropped_samples": dict(sorted(self.dropped.items())),
        }
        try:
            import numpy

            meta["numpy"] = numpy.__version__
        except Exception:  # pragma: no cover - numpy is a hard dep in practice
            pass
        if metrics is not None:
            meta["metrics"] = metrics
        meta.update(self.meta)
        path = os.path.join(self.run_dir, "meta.json")
        with open(path, "w") as f:
            json.dump(meta, f, indent=2, sort_keys=True)
            f.write("\n")

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(status="ok" if exc_type is None else "error")
        return False


@dataclass
class RunArtifact:
    """A run directory read back into memory (see :func:`load_run`)."""

    run_dir: str
    meta: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    #: Lines of events.jsonl that failed to parse (truncated run).
    corrupt_lines: int = 0

    @property
    def spans(self) -> list[dict]:
        """The span events, in completion order."""
        return [e for e in self.events if e.get("type") == "span"]

    @property
    def series(self) -> dict[str, tuple[list[int], list[float]]]:
        """Sample events regrouped as ``name -> (steps, values)``."""
        out: dict[str, tuple[list[int], list[float]]] = {}
        for e in self.events:
            if e.get("type") != "sample":
                continue
            steps, values = out.setdefault(e["series"], ([], []))
            steps.append(int(e["step"]))
            values.append(float(e["value"]))
        return out


def load_run(run_dir: str) -> RunArtifact:
    """Read a run artifact directory written by :class:`RunRecorder`.

    Tolerates partial artifacts from crashed or killed runs: a corrupt
    ``meta.json`` or truncated ``events.jsonl`` lines are counted in
    ``corrupt_lines`` and skipped, never raised — the summarize report
    degrades to whatever survived.
    """
    meta_path = os.path.join(run_dir, "meta.json")
    events_path = os.path.join(run_dir, "events.jsonl")
    if not os.path.exists(meta_path) and not os.path.exists(events_path):
        raise FileNotFoundError(f"{run_dir!r} holds no meta.json / events.jsonl")
    meta: dict = {}
    corrupt = 0
    if os.path.exists(meta_path):
        try:
            with open(meta_path) as f:
                meta = json.load(f)
        except (json.JSONDecodeError, OSError):
            corrupt += 1
    events: list[dict] = []
    if os.path.exists(events_path):
        with open(events_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if isinstance(event, dict):
                    events.append(event)
                else:
                    corrupt += 1
    return RunArtifact(run_dir=run_dir, meta=meta, events=events, corrupt_lines=corrupt)


def gc_runs(
    runs_dir: str = "runs", *, keep: int = 10, apply: bool = False
) -> dict[str, Any]:
    """Prune old run directories under *runs_dir*, newest-*keep* survive.

    Only directories that look like run artifacts (holding a
    ``meta.json`` or ``events.jsonl``) are candidates — anything else
    under *runs_dir* is left alone.  Age is directory mtime.  Dry-run
    unless *apply*; returns ``{"kept": [...], "pruned": [...],
    "applied": bool}`` with paths sorted newest first.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    candidates: list[tuple[float, str]] = []
    if os.path.isdir(runs_dir):
        for name in os.listdir(runs_dir):
            path = os.path.join(runs_dir, name)
            if not os.path.isdir(path):
                continue
            if not (
                os.path.exists(os.path.join(path, "meta.json"))
                or os.path.exists(os.path.join(path, "events.jsonl"))
            ):
                continue
            candidates.append((os.path.getmtime(path), path))
    candidates.sort(reverse=True)
    kept = [p for _, p in candidates[:keep]]
    pruned = [p for _, p in candidates[keep:]]
    if apply:
        for path in pruned:
            shutil.rmtree(path, ignore_errors=True)
    return {"kept": kept, "pruned": pruned, "applied": apply}


@contextmanager
def observe_run(
    run_dir: str,
    *,
    meta: dict | None = None,
    trace: bool = True,
) -> Iterator[RunRecorder]:
    """Observe one run: enable instrumentation, record into *run_dir*.

    Installs a :class:`RunRecorder` as the active recorder, a tracer
    whose span events stream into ``events.jsonl`` (when *trace*), and
    a fresh scoped metrics registry whose final snapshot lands in
    ``meta.json``.  All global state is restored on exit, and the
    artifact is finalized even if the body raises.
    """
    rec = RunRecorder(run_dir, meta=meta)
    was_enabled = runtime.enabled()
    runtime.enable()
    prev_rec = runtime.set_recorder(rec)
    prev_tracer = set_tracer(Tracer(sink=rec.emit)) if trace else None
    status = "error"
    with scoped_registry() as reg:
        try:
            yield rec
            status = "ok"
        finally:
            if trace:
                set_tracer(prev_tracer)
            runtime.set_recorder(prev_rec)
            if not was_enabled:
                runtime.disable()
            rec.finish(status=status, metrics=reg.snapshot())
