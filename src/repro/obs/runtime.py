"""The observability on/off switch and the active run recorder.

This module exists so the hot loops can guard instrumentation with a
single cheap check (``if obs.enabled():``) without importing the
heavier metrics / recorder machinery into their fast path, and without
import cycles inside :mod:`repro.obs`.

Everything here is re-exported from :mod:`repro.obs`; instrumented
modules use that facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import RunRecorder

__all__ = [
    "enabled",
    "enable",
    "disable",
    "get_recorder",
    "set_recorder",
    "record_sample",
    "record_event",
    "probe_interval",
    "set_probe_interval",
    "record_point",
    "record_monitor",
]

_enabled = False
_recorder: Optional["RunRecorder"] = None
_probe_every = 0


def enabled() -> bool:
    """True when instrumentation should record (the hot-path guard)."""
    return _enabled


def enable() -> None:
    """Turn instrumentation on process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off process-wide."""
    global _enabled
    _enabled = False


def set_recorder(recorder: Optional["RunRecorder"]) -> Optional["RunRecorder"]:
    """Install (or clear) the active run recorder; returns the previous one."""
    global _recorder
    prev = _recorder
    _recorder = recorder
    return prev


def get_recorder() -> Optional["RunRecorder"]:
    """The active run recorder, or ``None`` outside an observed run."""
    return _recorder


def record_sample(series: str, step: int, value: float) -> None:
    """Record one time-series sample on the active recorder (no-op without one).

    Callers guard with :func:`enabled` first, so the common disabled
    path never reaches this function.
    """
    if _recorder is not None:
        _recorder.record(series, step, value)


def record_event(event: dict) -> None:
    """Emit one raw event on the active recorder (no-op without one).

    Used by cold-path producers (e.g. :mod:`repro.obs.profile`) that
    want their output attached to the run artifact's event stream
    without importing the recorder machinery.
    """
    if _recorder is not None:
        _recorder.emit(event)


def probe_interval() -> int:
    """The per-step probe decimation k (0 = probes off, the default).

    Engines consult this once per ``run()`` call, inside the
    :func:`enabled` branch — the probes-off path costs nothing beyond
    the existing boolean guard.
    """
    return _probe_every


def set_probe_interval(every: int) -> int:
    """Set the probe decimation (sample every k-th step; 0 disables).

    Returns the previous interval so scoped users (``observe_run``)
    can restore it.
    """
    global _probe_every
    if every < 0:
        raise ValueError(f"probe interval must be >= 0, got {every}")
    prev = _probe_every
    _probe_every = int(every)
    return prev


def record_point(series: str, step: int, stats: dict) -> None:
    """Record one timeseries point on the active recorder (no-op without one)."""
    if _recorder is not None:
        _recorder.record_point(series, step, stats)


def record_monitor(event: dict) -> None:
    """Emit one recovery-monitor event on the active recorder (no-op without one).

    Monitor events land in *both* streams: ``events.jsonl`` (so
    ``repro obs summarize`` reports them) and ``timeseries.jsonl`` (so
    ``repro obs watch`` tails them live).
    """
    if _recorder is not None:
        _recorder.record_monitor(event)
