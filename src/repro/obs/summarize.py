"""Human-readable report over a recorded run artifact.

``python -m repro obs summarize runs/demo`` renders:

* a header from ``meta.json`` (experiment, scale, seed, git rev,
  duration, status);
* a stage-timing table aggregating span events by name (count, total,
  mean, max, share of the observed wall clock);
* one ASCII sparkline per recorded time series (max load, TV distance,
  coalescence fraction, …) with its range, reusing
  :func:`repro.utils.ascii_plot.sparkline`;
* the probe timeseries (``timeseries.jsonl``, when the run had
  ``--probe-every``) — one sparkline per probe series over its
  headline stat — and any fired recovery-monitor events with their
  paper-bound verdicts;
* the headline counters from the final metrics snapshot;
* a profile-hotspots table when the run was profiled (``--profile``
  emits ``{"type": "profile"}`` events, see :mod:`repro.obs.profile`).

Partial artifacts (a run killed mid-flight: truncated ``events.jsonl``,
missing final metrics snapshot, zero spans) render as a partial report
with a leading warning line instead of raising.
"""

from __future__ import annotations

from repro.obs.recorder import RunArtifact, load_run
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import Table

__all__ = ["summarize_run", "render_artifact"]


def _stage_table(artifact: RunArtifact) -> Table | None:
    spans = artifact.spans
    if not spans:
        return None
    agg: dict[str, dict] = {}
    for s in spans:
        a = agg.setdefault(
            s["name"], {"count": 0, "total": 0.0, "max": 0.0, "depth": s.get("depth", 0)}
        )
        a["count"] += 1
        a["total"] += float(s["dur_s"])
        a["max"] = max(a["max"], float(s["dur_s"]))
        a["depth"] = min(a["depth"], s.get("depth", 0))
    # Share is measured against the top-level spans only, so nested
    # stages do not double-count the denominator.
    top_total = sum(
        float(s["dur_s"]) for s in spans if s.get("depth", 0) == 0
    ) or sum(a["total"] for a in agg.values())
    t = Table(
        ["stage", "count", "total s", "mean s", "max s", "share"],
        title="stage timings (aggregated spans)",
    )
    for name, a in sorted(agg.items(), key=lambda kv: -kv[1]["total"]):
        label = "  " * a["depth"] + name
        share = a["total"] / top_total if top_total else 0.0
        t.add_row(
            [label, a["count"], a["total"], a["total"] / a["count"], a["max"],
             f"{100.0 * share:.1f}%"]
        )
    return t


def _series_table(artifact: RunArtifact) -> Table | None:
    series = artifact.series
    if not series:
        return None
    t = Table(
        ["series", "samples", "first", "last", "min", "max", "trend"],
        title="convergence traces",
    )
    for name, (steps, values) in sorted(series.items()):
        t.add_row(
            [name, len(values), values[0], values[-1], min(values), max(values),
             sparkline(values)]
        )
    return t


def _timeseries_table(artifact: RunArtifact) -> Table | None:
    points = artifact.points
    if not points:
        return None
    from repro.obs.watch import headline_stat
    from repro.obs.timeseries import stat_track

    t = Table(
        ["series", "points", "stat", "first", "last", "min", "max", "trend"],
        title="probe timeseries (timeseries.jsonl)",
    )
    for name, pts in sorted(points.items()):
        stat = headline_stat(pts)
        if stat is None:
            t.add_row([name, len(pts), "-", "-", "-", "-", "-", ""])
            continue
        _, values = stat_track(pts, stat)
        if not values:
            t.add_row([name, len(pts), stat, "-", "-", "-", "-", ""])
            continue
        t.add_row(
            [name, len(pts), stat, values[0], values[-1], min(values),
             max(values), sparkline(values)]
        )
    return t


def _monitor_table(artifact: RunArtifact) -> Table | None:
    events = artifact.monitor_events
    if not events:
        return None
    t = Table(
        ["monitor", "series", "step", "value", "threshold", "bound", "verdict"],
        title="recovery-monitor events",
    )
    for e in events:
        if "bound_step" in e:
            verdict = "within bound" if e.get("within_bound") else "OUTSIDE bound"
            bound = e["bound_step"]
        else:
            verdict, bound = "-", "-"
        t.add_row(
            [e.get("monitor", "?"), e.get("series", "?"), e.get("step", "?"),
             e.get("value", "?"), e.get("threshold", "?"), bound, verdict]
        )
    return t


def _profile_table(artifact: RunArtifact) -> Table | None:
    profiles = [e for e in artifact.events if e.get("type") == "profile"]
    if not profiles:
        return None
    latest = profiles[-1]
    t = Table(
        ["function", "calls", "self s", "cum s"],
        title=f"profile hotspots (top self-time; {latest.get('pstats', '?')})",
    )
    for row in latest.get("top", []):
        t.add_row([row.get("func", "?"), row.get("calls", 0),
                   row.get("self_s", 0.0), row.get("cum_s", 0.0)])
    return t


def _certificate_table(artifact: RunArtifact) -> Table | None:
    certs = [e for e in artifact.events if e.get("type") == "certificate"]
    if not certs:
        return None
    t = Table(
        ["status", "certificate", "checked", "violations", "measured vs paper"],
        title="lemma certificates & acceptance battery",
    )
    for e in certs:
        t.add_row(
            [
                "PASS" if e.get("passed") else "FAIL",
                e.get("name", "?"),
                e.get("checked", 0),
                e.get("violations", 0),
                e.get("headline", ""),
            ]
        )
    return t


def _warnings(artifact: RunArtifact) -> list[str]:
    warnings = []
    if artifact.corrupt_lines:
        warnings.append(
            f"warning: skipped {artifact.corrupt_lines} corrupt line(s) in "
            "events.jsonl — the run was likely truncated mid-write"
        )
    if "status" not in artifact.meta:
        warnings.append(
            "warning: meta.json missing or incomplete (no final metrics "
            "snapshot) — the run may not have finished; report is partial"
        )
    return warnings


def render_artifact(artifact: RunArtifact) -> str:
    """Render the full report for an in-memory :class:`RunArtifact`."""
    meta = artifact.meta
    head = [f"run artifact: {artifact.run_dir}"]
    for key in ("experiment_id", "title", "scale", "seed", "verdict", "status",
                "started_at", "duration_s", "git_rev", "python", "numpy"):
        if key in meta:
            head.append(f"  {key}: {meta[key]}")
    if meta.get("status") not in ("ok", "error", "failed"):
        from repro.checkpoint.store import checkpoint_step

        ckpt_step = meta.get("last_checkpoint_step")
        if ckpt_step is None:
            ckpt_step = checkpoint_step(artifact.run_dir)
        if ckpt_step is not None:
            head.append(
                f"  resumable at step {ckpt_step}: "
                f"python -m repro resume {artifact.run_dir}"
            )
    head.extend(f"  {w}" for w in _warnings(artifact))
    parts = ["\n".join(head)]
    certs = _certificate_table(artifact)
    if certs is not None:
        parts.append(certs.render())
    stage = _stage_table(artifact)
    if stage is not None:
        parts.append(stage.render())
    series = _series_table(artifact)
    if series is not None:
        parts.append(series.render())
    timeseries = _timeseries_table(artifact)
    if timeseries is not None:
        parts.append(timeseries.render())
    monitors = _monitor_table(artifact)
    if monitors is not None:
        parts.append(monitors.render())
    profile = _profile_table(artifact)
    if profile is not None:
        parts.append(profile.render())
    counters = meta.get("metrics", {}).get("counters", {})
    if counters:
        t = Table(["counter", "value"], title="counters")
        for name, value in sorted(counters.items()):
            t.add_row([name, value])
        parts.append(t.render())
    if len(parts) == 1:
        parts.append("(no spans, samples, or metrics recorded)")
    return "\n\n".join(parts)


def summarize_run(run_dir: str) -> str:
    """Load *run_dir* and render its timing / convergence report."""
    return render_artifact(load_run(run_dir))
