"""Campaign observatory: the run/bench index and the perf trajectory.

Two commands on top of the artifacts every run and bench already
writes:

* ``repro obs index`` — one JSONL index (``runs/index.jsonl``, schema
  ``repro.index/1``) over all ``runs/<id>/`` artifacts and committed
  ``BENCH_*.json`` trajectory points, rebuildable from disk at any
  time (the file is a cache, never the source of truth);
* ``repro obs trend [metric]`` — the per-commit perf trajectory across
  every bench artifact, as ASCII sparkline + table (``--json`` for
  machines), plus trajectory-wide drift detection:
  ``--fail-on-regression`` compares the *head* artifact not against a
  single predecessor but against the pooled samples of the trailing
  window, reusing ``obs diff``'s bootstrap-CI machinery
  (:func:`repro.obs.compare.bootstrap_delta_ci`).

Bench artifacts historically landed both in the repo root and in
``benchmarks/artifacts/``; both locations are scanned (and ``repro
bench run`` now defaults to ``benchmarks/artifacts/``).
"""

from __future__ import annotations

import glob
import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.compare import _verdict, bootstrap_delta_ci, load_metrics
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import Table

__all__ = [
    "INDEX_SCHEMA",
    "INDEX_FILE",
    "DEFAULT_BENCH_DIRS",
    "build_index",
    "write_index",
    "load_index",
    "render_index",
    "bench_trajectory",
    "TrendResult",
    "compute_trend",
    "render_trend",
    "trend_to_json",
]

#: Schema tag of ``runs/index.jsonl``; bump on breaking changes.
INDEX_SCHEMA = "repro.index/1"

#: Index file name, under the runs directory.
INDEX_FILE = "index.jsonl"

#: Where ``BENCH_*.json`` trajectory points may live (both are scanned;
#: the repo root holds pre-PR-7 artifacts, new ones default to
#: ``benchmarks/artifacts``).
DEFAULT_BENCH_DIRS = (".", "benchmarks/artifacts")


def _scan_runs(runs_dir: str) -> list[dict]:
    entries: list[dict] = []
    if not os.path.isdir(runs_dir):
        return entries
    for name in sorted(os.listdir(runs_dir)):
        path = os.path.join(runs_dir, name)
        meta_path = os.path.join(path, "meta.json")
        if not os.path.isdir(path):
            continue
        if not (
            os.path.exists(meta_path)
            or os.path.exists(os.path.join(path, "events.jsonl"))
        ):
            continue
        entry: dict = {"type": "run", "path": path}
        try:
            with open(meta_path) as f:
                meta = json.load(f)
        except (OSError, json.JSONDecodeError):
            meta = {}
        if not isinstance(meta, dict):
            meta = {}
        for key in ("status", "started_at", "duration_s", "git_rev"):
            if key in meta:
                entry[key] = meta[key]
        if "series" in meta:
            entry["series"] = len(meta["series"])
        ts = meta.get("timeseries")
        if isinstance(ts, dict):
            entry["points"] = int(sum(ts.values()))
            workers = {
                key.rsplit("#w", 1)[1]
                for key in ts
                if "#w" in key and key.rsplit("#w", 1)[1].isdigit()
            }
            if workers:
                entry["workers"] = len(workers)
        if "monitor_events" in meta:
            entry["monitor_events"] = meta["monitor_events"]
        entries.append(entry)
    return entries


def _scan_benches(bench_dirs: tuple[str, ...] | list[str]) -> list[dict]:
    entries: list[dict] = []
    seen: set[str] = set()
    for d in bench_dirs:
        for path in sorted(glob.glob(os.path.join(d, "BENCH_*.json"))):
            norm = os.path.normpath(path)
            if norm in seen:
                continue
            seen.add(norm)
            entry: dict = {"type": "bench", "path": norm}
            try:
                with open(path) as f:
                    payload = json.load(f)
            except (OSError, json.JSONDecodeError):
                entry["error"] = "unreadable"
                entries.append(entry)
                continue
            if not str(payload.get("schema", "")).startswith("repro.bench/"):
                continue
            for key in ("created_at", "git_rev"):
                if key in payload:
                    entry[key] = payload[key]
            config = payload.get("config") or {}
            if config.get("filter") is not None:
                entry["filter"] = config["filter"]
            benches = payload.get("benches") or []
            entry["benches"] = len(benches)
            entry["errors"] = sum(
                1 for b in benches if b.get("status") == "error"
            )
            entries.append(entry)
    return entries


def build_index(
    *,
    runs_dir: str = "runs",
    bench_dirs: tuple[str, ...] | list[str] = DEFAULT_BENCH_DIRS,
) -> list[dict]:
    """Scan the disk into index entries (runs first, then bench points)."""
    return _scan_runs(runs_dir) + _scan_benches(bench_dirs)


def write_index(
    entries: list[dict], *, runs_dir: str = "runs"
) -> str:
    """Persist *entries* to ``<runs_dir>/index.jsonl``; returns the path."""
    os.makedirs(runs_dir, exist_ok=True)
    path = os.path.join(runs_dir, INDEX_FILE)
    with open(path, "w") as f:
        header = {
            "type": "header",
            "schema": INDEX_SCHEMA,
            "built_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "entries": len(entries),
        }
        f.write(json.dumps(header, separators=(",", ":")) + "\n")
        for e in entries:
            f.write(json.dumps(e, separators=(",", ":"), sort_keys=True) + "\n")
    return path


def load_index(
    *,
    runs_dir: str = "runs",
    bench_dirs: tuple[str, ...] | list[str] = DEFAULT_BENCH_DIRS,
    rebuild: bool = False,
) -> list[dict]:
    """Read ``<runs_dir>/index.jsonl``, rebuilding from disk when absent.

    The index is a cache: pass *rebuild* (or delete the file) to rescan.
    Corrupt lines are skipped, matching every other artifact reader.
    """
    path = os.path.join(runs_dir, INDEX_FILE)
    if rebuild or not os.path.exists(path):
        return build_index(runs_dir=runs_dir, bench_dirs=bench_dirs)
    entries: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("type") in (
                "run", "bench",
            ):
                entries.append(record)
    return entries


def render_index(entries: list[dict]) -> str:
    """Human-readable view of the index (runs table + bench table)."""
    parts: list[str] = []
    runs = [e for e in entries if e.get("type") == "run"]
    benches = [e for e in entries if e.get("type") == "bench"]
    if runs:
        t = Table(
            ["run", "status", "started", "dur s", "points", "workers",
             "monitors"],
            title=f"run artifacts ({len(runs)})",
        )
        for e in runs:
            t.add_row([
                e["path"], e.get("status", "?"),
                (e.get("started_at") or "?")[:19],
                e.get("duration_s", ""), e.get("points", ""),
                e.get("workers", ""), e.get("monitor_events", ""),
            ])
        parts.append(t.render())
    if benches:
        t = Table(
            ["artifact", "created", "git rev", "filter", "benches", "errors"],
            title=f"bench trajectory points ({len(benches)})",
        )
        for e in sorted(benches, key=lambda x: x.get("created_at", "")):
            t.add_row([
                e["path"], (e.get("created_at") or "?")[:19],
                (e.get("git_rev") or "?")[:10], e.get("filter", ""),
                e.get("benches", ""), e.get("errors", ""),
            ])
        parts.append(t.render())
    if not parts:
        return "(no runs or bench artifacts found)"
    return "\n\n".join(parts)


# -- the perf trajectory ------------------------------------------------------


@dataclass
class TrajectoryPoint:
    """One bench artifact on the trajectory, with its flattened metrics."""

    path: str
    created_at: str
    git_rev: str | None
    metrics: dict[str, list[float]] = field(default_factory=dict)


def bench_trajectory(
    bench_dirs: tuple[str, ...] | list[str] = DEFAULT_BENCH_DIRS,
) -> list[TrajectoryPoint]:
    """Every readable bench artifact, oldest first (by ``created_at``)."""
    points: list[TrajectoryPoint] = []
    for e in _scan_benches(bench_dirs):
        if "error" in e:
            continue
        try:
            metrics = load_metrics(e["path"])
        except (ValueError, OSError):
            continue
        points.append(TrajectoryPoint(
            path=e["path"],
            created_at=e.get("created_at", ""),
            git_rev=e.get("git_rev"),
            metrics=metrics,
        ))
    points.sort(key=lambda p: p.created_at)
    return points


@dataclass
class MetricTrend:
    """One metric's trajectory across artifacts, head vs trailing window."""

    name: str
    means: list[float]  # per-artifact mean, oldest first (NaN = absent)
    head_mean: float
    trail_mean: float
    delta: float
    pct: float | None
    ci: tuple[float, float] | None
    verdict: str
    n_head: int
    n_trail: int


@dataclass
class TrendResult:
    """The full trajectory view (see :func:`compute_trend`)."""

    points: list[TrajectoryPoint]
    metric: str | None
    trends: list[MetricTrend] = field(default_factory=list)
    window: int = 3
    threshold: float = 0.05

    @property
    def has_regression(self) -> bool:
        return any(t.verdict == "regressed" for t in self.trends)


def compute_trend(
    *,
    metric: str | None = None,
    bench_dirs: tuple[str, ...] | list[str] = DEFAULT_BENCH_DIRS,
    window: int = 3,
    threshold: float = 0.05,
    n_boot: int = 2000,
    seed: int = 0,
) -> TrendResult:
    """Assemble the trajectory and the head-vs-trailing-window drift.

    For each metric present in the head (newest) artifact, the trailing
    window pools the samples of up to *window* immediately preceding
    artifacts that carry the metric; drift is then the same bootstrap
    mean-delta CI + threshold verdict as ``obs diff`` — but against the
    pooled window, so one noisy predecessor cannot mask (or fake) a
    trajectory-wide regression.
    """
    points = bench_trajectory(bench_dirs)
    result = TrendResult(
        points=points, metric=metric, window=window, threshold=threshold
    )
    if not points:
        return result
    head = points[-1]
    names = sorted(head.metrics) if metric is None else [metric]
    for name in names:
        head_samples = head.metrics.get(name, [])
        trail_samples: list[float] = []
        contributing = 0
        for p in reversed(points[:-1]):
            if contributing >= window:
                break
            if name in p.metrics:
                trail_samples.extend(p.metrics[name])
                contributing += 1
        means = [
            float(np.mean(p.metrics[name])) if name in p.metrics else float("nan")
            for p in points
        ]
        if not head_samples or not trail_samples:
            # Not a drift candidate (new metric, or metric only in
            # history); still render its trajectory when asked by name.
            if metric is not None or head_samples:
                result.trends.append(MetricTrend(
                    name=name, means=means,
                    head_mean=float(np.mean(head_samples)) if head_samples else float("nan"),
                    trail_mean=float(np.mean(trail_samples)) if trail_samples else float("nan"),
                    delta=float("nan"), pct=None, ci=None, verdict="new",
                    n_head=len(head_samples), n_trail=len(trail_samples),
                ))
            continue
        head_mean = float(np.mean(head_samples))
        trail_mean = float(np.mean(trail_samples))
        delta = head_mean - trail_mean
        pct = delta / trail_mean if trail_mean != 0.0 else None
        ci = bootstrap_delta_ci(
            trail_samples, head_samples, n_boot=n_boot, seed=seed
        )
        verdict, _ = _verdict(delta, pct, ci, threshold)
        result.trends.append(MetricTrend(
            name=name, means=means, head_mean=head_mean, trail_mean=trail_mean,
            delta=delta, pct=pct, ci=ci, verdict=verdict,
            n_head=len(head_samples), n_trail=len(trail_samples),
        ))
    return result


def render_trend(result: TrendResult) -> str:
    """The trajectory table: one artifact per column tick, spark + verdict."""
    if not result.points:
        return "(no bench artifacts found — run 'repro bench run' first)"
    parts: list[str] = []
    t = Table(
        ["#", "artifact", "created", "git rev"],
        title=f"perf trajectory ({len(result.points)} artifacts, oldest first)",
    )
    for i, p in enumerate(result.points):
        t.add_row([i, os.path.basename(p.path), p.created_at[:19],
                   (p.git_rev or "?")[:10]])
    parts.append(t.render())
    shown = result.trends
    if result.metric is None:
        # Whole-trajectory mode: only metrics with >= 2 artifacts of
        # history render (a spark of one point says nothing).
        shown = [
            tr for tr in shown
            if sum(1 for m in tr.means if m == m) >= 2
        ]
    if not shown:
        parts.append(
            "(no metric appears in two or more artifacts"
            + (f"; metric {result.metric!r} not found" if result.metric else "")
            + ")"
        )
        return "\n\n".join(parts)
    t = Table(
        ["metric", "trajectory", "head", "trail mean", "delta %", "verdict"],
        title=(
            f"head vs trailing window of {result.window} "
            f"(threshold {100 * result.threshold:.0f}%, lower is better)"
        ),
    )
    for tr in shown:
        finite = [m for m in tr.means if m == m]
        spark = sparkline(finite) if finite else ""
        pct = f"{100 * tr.pct:+.1f}%" if tr.pct is not None else "n/a"
        mark = {"improved": "improved ✓", "regressed": "REGRESSED ✗",
                "new": "new"}.get(tr.verdict, "unchanged")
        head = f"{tr.head_mean:.4g}" if tr.head_mean == tr.head_mean else "-"
        trail = f"{tr.trail_mean:.4g}" if tr.trail_mean == tr.trail_mean else "-"
        t.add_row([tr.name, spark, head, trail, pct, mark])
    parts.append(t.render())
    counts = {"improved": 0, "regressed": 0, "unchanged": 0, "new": 0}
    for tr in shown:
        counts[tr.verdict] = counts.get(tr.verdict, 0) + 1
    parts.append(
        f"{len(shown)} metric(s): {counts['improved']} improved, "
        f"{counts['regressed']} regressed, {counts['unchanged']} unchanged, "
        f"{counts['new']} without history"
    )
    return "\n\n".join(parts)


def trend_to_json(result: TrendResult) -> dict:
    """Machine-readable trajectory (the ``--json`` output)."""
    return {
        "schema": "repro.trend/1",
        "window": result.window,
        "threshold": result.threshold,
        "has_regression": result.has_regression,
        "artifacts": [
            {"path": p.path, "created_at": p.created_at, "git_rev": p.git_rev}
            for p in result.points
        ],
        "metrics": [
            {
                "name": tr.name,
                "means": [None if m != m else m for m in tr.means],
                "head_mean": None if tr.head_mean != tr.head_mean else tr.head_mean,
                "trail_mean": (
                    None if tr.trail_mean != tr.trail_mean else tr.trail_mean
                ),
                "delta": None if tr.delta != tr.delta else tr.delta,
                "pct": tr.pct,
                "ci95": list(tr.ci) if tr.ci else None,
                "verdict": tr.verdict,
                "n_head": tr.n_head,
                "n_trail": tr.n_trail,
            }
            for tr in result.trends
        ],
    }
