"""Non-uniform edge arrivals: probing the boundary of the §6 model.

The paper analyzes edges arriving *uniformly* over vertex pairs; the
fairness application (§1.1) also assumes uniform availability.  This
module generalizes the greedy simulator to an arbitrary arrival
distribution over vertex pairs so the model boundary can be explored:

* :func:`uniform_pairs` — the paper's model (control);
* :func:`product_pairs` — endpoints drawn independently from a vertex
  weight vector (conditioned distinct): a 'popular vertices' skew;
* :func:`clustered_pairs` — with probability q the pair is drawn inside
  a fixed cluster, else uniformly: models correlated availability.

Greedy still keeps per-vertex discrepancies mean-reverting under any
arrival law that touches every vertex, but the *recovery time* degrades
with skew because rarely-drawn vertices repair slowly — measurable with
:class:`GeneralArrivalEdgeProcess` and checked in the tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "PairSampler",
    "uniform_pairs",
    "product_pairs",
    "clustered_pairs",
    "GeneralArrivalEdgeProcess",
]

PairSampler = Callable[[np.random.Generator], tuple[int, int]]


def uniform_pairs(n: int) -> PairSampler:
    """The paper's model: an i.u.r. unordered pair of distinct vertices."""
    n = check_positive_int("n", n)
    if n < 2:
        raise ValueError("need n >= 2")

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        u = int(rng.integers(0, n))
        w = int(rng.integers(0, n - 1))
        if w >= u:
            w += 1
        return u, w

    return sample


def product_pairs(vertex_weights: np.ndarray) -> PairSampler:
    """Endpoints i.i.d. from a weight vector, conditioned distinct."""
    w = np.asarray(vertex_weights, dtype=np.float64)
    if w.ndim != 1 or w.size < 2 or (w <= 0).any():
        raise ValueError("need >= 2 strictly positive vertex weights")
    p = w / w.sum()

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        while True:
            u = int(rng.choice(p.size, p=p))
            v = int(rng.choice(p.size, p=p))
            if u != v:
                return u, v

    return sample


def clustered_pairs(n: int, cluster_size: int, q: float) -> PairSampler:
    """With probability q draw inside the cluster {0..cluster_size-1}."""
    n = check_positive_int("n", n)
    cluster_size = check_positive_int("cluster_size", cluster_size)
    if not 2 <= cluster_size <= n:
        raise ValueError("need 2 <= cluster_size <= n")
    q = check_probability("q", q)
    inside = uniform_pairs(cluster_size)
    outside = uniform_pairs(n)

    def sample(rng: np.random.Generator) -> tuple[int, int]:
        if rng.random() < q:
            return inside(rng)
        return outside(rng)

    return sample


class GeneralArrivalEdgeProcess:
    """Greedy edge orientation under an arbitrary arrival distribution."""

    def __init__(
        self,
        start,
        pair_sampler: PairSampler,
        *,
        lazy: bool = False,
        seed: SeedLike = None,
    ):
        d = np.asarray(list(start), dtype=np.int64)
        if d.ndim != 1 or d.shape[0] < 2:
            raise ValueError("state must be a vector of >= 2 discrepancies")
        if int(d.sum()) != 0:
            raise ValueError("discrepancies must sum to 0")
        self._d = d.copy()
        self.pair_sampler = pair_sampler
        self.lazy = bool(lazy)
        self._rng = as_generator(seed)
        self._t = 0

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self._d.shape[0])

    @property
    def t(self) -> int:
        """Arrivals processed."""
        return self._t

    @property
    def discrepancies(self) -> np.ndarray:
        """Live per-vertex discrepancies (read-only use)."""
        return self._d

    @property
    def unfairness(self) -> int:
        """max |discrepancy|."""
        return int(np.abs(self._d).max())

    def step(self) -> None:
        """One arrival, oriented greedily."""
        rng = self._rng
        self._t += 1
        if self.lazy and rng.random() < 0.5:
            return
        u, w = self.pair_sampler(rng)
        d = self._d
        if d[u] >= d[w]:
            d[u] -= 1
            d[w] += 1
        else:
            d[w] -= 1
            d[u] += 1

    def run(self, steps: int) -> "GeneralArrivalEdgeProcess":
        """Process *steps* arrivals; returns self."""
        for _ in range(steps):
            self.step()
        return self

    def run_until_unfairness(self, target: int, max_steps: int) -> int:
        """Arrivals until unfairness ≤ target (−1 if cap hit)."""
        if self.unfairness <= target:
            return 0
        for k in range(1, max_steps + 1):
            self.step()
            if self.unfairness <= target:
                return k
        return -1
