"""The carpool fairness problem and the Ajtai et al. reduction (§1.1).

Fagin & Williams' carpool problem: n people; each day a subset S of them
rides together and one member must drive.  A person's *fairness debt*
after a trip with |S| = k is updated by +1 − 1/k for the driver and
−1/k for each passenger (total preserved at 0); the unfairness of the
system is max_i |debt_i|.

Ajtai et al. showed fairness-of-scheduling problems reduce to the edge
orientation problem at the price of doubling the expected fairness; with
i.u.r. *pairs* (k = 2) and the greedy "least-debt drives" protocol,
2·debt is exactly the edge-orientation discrepancy.  This module
implements the general k-subset carpool with the greedy protocol, which
is what experiment E13 uses to demonstrate the reduction numerically:
measured unfairness of the k = 2 carpool equals half the greedy
edge-orientation unfairness path-for-path on shared randomness.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CarpoolSimulator"]


class CarpoolSimulator:
    """Greedy carpool scheduling with uniform random k-subsets.

    Debts are kept as exact :class:`fractions.Fraction` values scaled by
    k! when useful; we store them as Fractions so the k = 2 ↔ edge
    orientation correspondence is exact, not floating point.
    """

    def __init__(self, n: int, k: int = 2, *, seed: SeedLike = None):
        self.n = check_positive_int("n", n)
        self.k = check_positive_int("k", k)
        if self.k < 2 or self.k > self.n:
            raise ValueError(f"need 2 <= k <= n, got k={k}, n={n}")
        self._debt = [Fraction(0)] * self.n
        self._rng = as_generator(seed)
        self._t = 0

    @property
    def t(self) -> int:
        """Number of trips scheduled."""
        return self._t

    @property
    def debts(self) -> list[Fraction]:
        """Current per-person debts (copy)."""
        return list(self._debt)

    @property
    def unfairness(self) -> Fraction:
        """max_i |debt_i|."""
        return max(abs(d) for d in self._debt)

    def step(self) -> int:
        """One trip: draw a uniform k-subset, greedy driver; returns driver."""
        rng = self._rng
        subset = rng.choice(self.n, size=self.k, replace=False)
        return self.step_with(subset)

    def step_with(self, subset: np.ndarray) -> int:
        """Schedule a trip for an externally chosen subset (for couplings).

        The greedy protocol picks the subset member with the *minimum*
        debt as driver (they have driven least relative to their share);
        ties broken by lowest index, matching a deterministic greedy.
        """
        members = [int(i) for i in subset]
        if len(set(members)) != len(members):
            raise ValueError("subset must contain distinct people")
        driver = min(members, key=lambda i: (self._debt[i], i))
        share = Fraction(1, len(members))
        for i in members:
            if i == driver:
                self._debt[i] += 1 - share
            else:
                self._debt[i] -= share
        self._t += 1
        return driver

    def run(self, trips: int) -> "CarpoolSimulator":
        """Schedule *trips* trips; returns self."""
        for _ in range(trips):
            self.step()
        return self

    def mean_unfairness(
        self, trips: int, *, burn_in: int = 0, every: int = 1
    ) -> float:
        """Time-averaged unfairness over a run after *burn_in* trips.

        ``every`` subsamples the O(n) unfairness evaluation (the debts
        still update every trip) — set it ~n/16 for large n.
        """
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.run(burn_in)
        total = 0.0
        count = 0
        for k in range(1, trips + 1):
            self.step()
            if k % every == 0:
                total += float(self.unfairness)
                count += 1
        if count == 0:
            raise ValueError("trips too small for the chosen every")
        return total / count

    def __repr__(self) -> str:
        return (
            f"CarpoolSimulator(n={self.n}, k={self.k}, t={self._t}, "
            f"unfairness={float(self.unfairness):.3f})"
        )
