"""State representations for the edge orientation problem (§6).

Two equivalent representations are used:

* a *discrepancy vector* d ∈ ℤⁿ with d_v = outdeg(v) − indeg(v) and
  Σ d_v = 0 (each oriented edge contributes +1 and −1).  Vertices are
  exchangeable, so the canonical state is the sorted (descending)
  tuple;
* the paper's *class vector* x, where x_λ counts the vertices whose
  discrepancy equals the λ-th largest representable value.  Starting
  from the empty graph, discrepancies stay within ±⌈(n−1)/2⌉ (Anderson
  et al., "Disks, balls, and walls"), so classes λ = 1 … 2⌈(n−1)/2⌉+1
  cover discrepancies C, C−1, …, −C with C = ⌈(n−1)/2⌉.  The zero
  state x̂ has all n vertices in the middle class.

The reachable space Ψ (all states reachable from x̂ under the lazy
chain) is enumerated by BFS for exact analysis.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "max_discrepancy_bound",
    "num_classes",
    "class_of_discrepancy",
    "discrepancy_of_class",
    "discrepancies_to_xvector",
    "xvector_to_discrepancies",
    "zero_state",
    "canonical_discrepancies",
    "greedy_neighbors",
    "enumerate_reachable_states",
    "unfairness",
]


def max_discrepancy_bound(n: int) -> int:
    """C = ⌈(n−1)/2⌉, the discrepancy cap for states reachable from 0."""
    if n < 2:
        raise ValueError(f"edge orientation needs n >= 2 vertices, got {n}")
    return (n - 1 + 1) // 2 if (n - 1) % 2 else (n - 1) // 2


def num_classes(n: int) -> int:
    """Number of discrepancy classes: 2C + 1."""
    return 2 * max_discrepancy_bound(n) + 1


def class_of_discrepancy(disc: int, n: int) -> int:
    """1-based class index λ of a discrepancy value (λ=1 ⇔ disc = +C)."""
    c = max_discrepancy_bound(n)
    if abs(disc) > c:
        raise ValueError(f"discrepancy {disc} outside reachable range ±{c}")
    return c + 1 - disc


def discrepancy_of_class(lam: int, n: int) -> int:
    """Discrepancy value of 1-based class λ (inverse of class_of_discrepancy)."""
    c = max_discrepancy_bound(n)
    k = num_classes(n)
    if not 1 <= lam <= k:
        raise ValueError(f"class {lam} outside [1, {k}]")
    return c + 1 - lam


def canonical_discrepancies(d: Iterable[int]) -> tuple[int, ...]:
    """Canonical (sorted descending) tuple of a discrepancy vector."""
    arr = sorted((int(x) for x in d), reverse=True)
    if sum(arr) != 0:
        raise ValueError(f"discrepancies must sum to 0, got {sum(arr)}")
    return tuple(arr)


def discrepancies_to_xvector(d: Iterable[int], n: int) -> tuple[int, ...]:
    """Convert a discrepancy vector to the paper's class-count vector x."""
    k = num_classes(n)
    x = [0] * k
    count = 0
    for disc in d:
        x[class_of_discrepancy(int(disc), n) - 1] += 1
        count += 1
    if count != n:
        raise ValueError(f"expected {n} vertices, got {count}")
    return tuple(x)


def xvector_to_discrepancies(x: Iterable[int], n: int) -> tuple[int, ...]:
    """Convert a class-count vector back to the sorted discrepancy tuple."""
    out: list[int] = []
    for lam0, cnt in enumerate(x):
        disc = discrepancy_of_class(lam0 + 1, n)
        out.extend([disc] * int(cnt))
    if len(out) != n:
        raise ValueError(f"class counts sum to {len(out)}, expected {n}")
    return tuple(out)  # classes are ordered by decreasing discrepancy


def zero_state(n: int) -> tuple[int, ...]:
    """The all-zero discrepancy state (the empty multigraph)."""
    return (0,) * n


def unfairness(d: Iterable[int]) -> int:
    """max_v |outdeg(v) − indeg(v)| — the paper's fairness measure."""
    return max(abs(int(x)) for x in d)


def greedy_neighbors(state: tuple[int, ...]) -> list[tuple[int, ...]]:
    """All states reachable in one non-lazy step from a canonical state.

    A step picks two distinct vertices and moves the higher-discrepancy
    one down by 1 and the lower one up by 1 (ties: one up, one down).
    Since vertices are exchangeable only the (value_a, value_b) pair
    matters; we return the distinct successor states.
    """
    n = len(state)
    values = sorted(set(state), reverse=True)
    succs: set[tuple[int, ...]] = set()
    counts = {v: state.count(v) for v in values}
    for ia, a in enumerate(values):
        for b in values[ia:]:
            if a == b and counts[a] < 2:
                continue
            # a >= b: a's vertex gets -1, b's gets +1.
            lst = list(state)
            lst.remove(a)
            lst.remove(b)
            lst.extend([a - 1, b + 1])
            succs.add(tuple(sorted(lst, reverse=True)))
    return sorted(succs, reverse=True)


def enumerate_reachable_states(n: int) -> list[tuple[int, ...]]:
    """BFS enumeration of Ψ: canonical states reachable from the zero state.

    Exponential in n — intended for the exact analysis at n ≤ 6 or so.
    Also machine-checks the Anderson et al. bound: every reachable
    discrepancy lies within ±⌈(n−1)/2⌉.
    """
    start = zero_state(n)
    seen = {start}
    frontier = [start]
    cap = max_discrepancy_bound(n)
    while frontier:
        nxt: list[tuple[int, ...]] = []
        for s in frontier:
            for t in greedy_neighbors(s):
                if t not in seen:
                    if max(abs(v) for v in t) > cap:
                        raise AssertionError(
                            f"reachable state {t} exceeds the ±{cap} bound "
                            "(contradicts Anderson et al.)"
                        )
                    seen.add(t)
                    nxt.append(t)
        frontier = nxt
    return sorted(seen, reverse=True)
