"""The edge orientation problem of Ajtai et al. (§2, §6 of the paper).

Undirected edges over n vertices arrive one by one (i.u.r. pairs); each
must be oriented on arrival.  The *greedy protocol* orients each new
edge from the endpoint with smaller (outdegree − indegree) to the one
with larger.  *Unfairness* is max_v |outdeg(v) − indeg(v)|; Ajtai et al.
showed the greedy protocol keeps the expected unfairness at Θ(log log n)
in the limit, and the paper bounds its recovery time by O(n² ln² n)
(Theorem 2), improving Ajtai et al.'s O(n⁵).

Modules:

* :mod:`repro.edgeorient.state` — discrepancy vectors, the x-vector
  class representation of §6, and the reachable state space Ψ;
* :mod:`repro.edgeorient.greedy` — the greedy protocol simulator and
  the lazy Markov chain of §6 (Remark 1: the bit b makes it ergodic at
  the cost of a ~2× slowdown);
* :mod:`repro.edgeorient.chain` — the exact lazy-chain kernel on Ψ for
  small n;
* :mod:`repro.edgeorient.metric` — the path-coupling metric Δ of
  Definitions 6.1–6.3, computed exactly as a weighted shortest path;
* :mod:`repro.edgeorient.carpool` — the Fagin–Williams carpool problem
  and the Ajtai et al. fairness reduction (§1.1).
"""

from repro.edgeorient.arrival import GeneralArrivalEdgeProcess
from repro.edgeorient.batch import BatchEdgeProcess
from repro.edgeorient.carpool import CarpoolSimulator
from repro.edgeorient.chain import edge_orientation_kernel
from repro.edgeorient.greedy import EdgeOrientationProcess
from repro.edgeorient.metric import EdgeOrientationMetric
from repro.edgeorient.state import (
    class_of_discrepancy,
    discrepancies_to_xvector,
    discrepancy_of_class,
    enumerate_reachable_states,
    xvector_to_discrepancies,
    zero_state,
)

__all__ = [
    "BatchEdgeProcess",
    "CarpoolSimulator",
    "GeneralArrivalEdgeProcess",
    "EdgeOrientationMetric",
    "EdgeOrientationProcess",
    "class_of_discrepancy",
    "discrepancies_to_xvector",
    "discrepancy_of_class",
    "edge_orientation_kernel",
    "enumerate_reachable_states",
    "xvector_to_discrepancies",
    "zero_state",
]
