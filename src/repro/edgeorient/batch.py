"""Vectorized multi-replica edge orientation simulator.

The (R, n) analogue of :class:`repro.balls.batch.BatchProcess` for the
greedy edge orientation chain: R independent replicas kept as rows of
descending discrepancies, advanced together with whole-array NumPy
passes.  The greedy move on ranks (φ, ψ), φ < ψ, with values
a = row[φ] ≥ b = row[ψ] is the multiset update −{a, b} + {a−1, b+1},
which splits into three vectorizable cases (see
:func:`repro.coupling.grand._rank_move` for the scalar derivation):

* a = b     → +1 at the first index of a's run, −1 at its last;
* a = b + 1 → no-op (the multiset is unchanged);
* a > b + 1 → −1 at the last index of a's run, +1 at the first of b's.

Run boundaries vectorize through counting comparisons:
first(x) = #{entries > x}, last(x) = #{entries ≥ x} − 1, per row.

Used by E8-style unfairness sweeps at large n, where R Python-level
simulators would dominate the wall clock.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["BatchEdgeProcess"]


class BatchEdgeProcess:
    """R replicas of the greedy (optionally lazy) edge orientation chain."""

    def __init__(
        self,
        start,
        replicas: int,
        *,
        lazy: bool = False,
        seed: SeedLike = None,
    ):
        d = np.sort(np.asarray(list(start), dtype=np.int64))[::-1]
        if d.ndim != 1 or d.shape[0] < 2:
            raise ValueError("state must be a vector of >= 2 discrepancies")
        if int(d.sum()) != 0:
            raise ValueError(f"discrepancies must sum to 0, got {int(d.sum())}")
        replicas = check_positive_int("replicas", replicas)
        self._D = np.tile(d, (replicas, 1))
        self._R = replicas
        self._n = int(d.shape[0])
        self._rows = np.arange(replicas)
        self.lazy = bool(lazy)
        self._rng = as_generator(seed)
        self._t = 0

    @property
    def replicas(self) -> int:
        """Number of replicas R."""
        return self._R

    @property
    def n(self) -> int:
        """Vertices per replica."""
        return self._n

    @property
    def t(self) -> int:
        """Arrivals processed."""
        return self._t

    @property
    def discrepancies(self) -> np.ndarray:
        """The live (R, n) descending discrepancy matrix (read-only use)."""
        return self._D

    def unfairness(self) -> np.ndarray:
        """Per-replica max |discrepancy| (descending rows: ends suffice)."""
        return np.maximum(self._D[:, 0], -self._D[:, -1])

    def step(self) -> None:
        """One arrival in every replica."""
        rng = self._rng
        D = self._D
        R, n = self._R, self._n
        rows = self._rows
        if self.lazy:
            active = rng.random(R) < 0.5
        else:
            active = np.ones(R, dtype=bool)
        phi = rng.integers(0, n, size=R)
        psi = rng.integers(0, n - 1, size=R)
        psi += psi >= phi
        lo_rank = np.minimum(phi, psi)
        hi_rank = np.maximum(phi, psi)
        a = D[rows, lo_rank]  # larger (or equal) discrepancy
        b = D[rows, hi_rank]
        equal = active & (a == b)
        skip = a == b + 1  # multiset no-op
        general = active & ~equal & ~skip

        if equal.any():
            vals = a[equal]
            sub = D[equal]
            lo = (sub > vals[:, None]).sum(axis=1)
            hi = (sub >= vals[:, None]).sum(axis=1) - 1
            r_idx = rows[equal]
            D[r_idx, lo] += 1
            D[r_idx, hi] -= 1
        if general.any():
            va = a[general]
            vb = b[general]
            sub = D[general]
            hi_a = (sub >= va[:, None]).sum(axis=1) - 1
            lo_b = (sub > vb[:, None]).sum(axis=1)
            r_idx = rows[general]
            D[r_idx, hi_a] -= 1
            D[r_idx, lo_b] += 1
        self._t += 1

    def _obs_account(self, steps: int) -> None:
        """Bulk-count *steps* fleet arrivals (only called when obs is enabled)."""
        reg = obs.metrics()
        reg.counter("edge_batch.steps").inc(steps)
        reg.counter("edge_batch.replica_arrivals").inc(steps * self._R)

    def run(self, steps: int) -> "BatchEdgeProcess":
        """Advance all replicas by *steps* arrivals; returns self."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if not obs.enabled():
            for _ in range(steps):
                self.step()
            return self
        with obs.span("edge_batch/run", steps=steps, replicas=self._R):
            for _ in range(steps):
                self.step()
        self._obs_account(steps)
        return self

    def mean_unfairness(self, steps: int, *, burn_in: int = 0, every: int = 1) -> float:
        """Pooled time-average unfairness across replicas.

        Under observability the fleet-mean unfairness is recorded at
        each sampled point (series ``edge_batch/unfairness``).
        """
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.run(burn_in)
        observing = obs.enabled()
        total = 0.0
        count = 0
        for k in range(1, steps + 1):
            self.step()
            if k % every == 0:
                mean = float(self.unfairness().mean())
                total += mean
                count += 1
                if observing:
                    obs.record_sample("edge_batch/unfairness", self._t, mean)
        if observing:
            self._obs_account(steps)
        if count == 0:
            raise ValueError("steps too small for the chosen every")
        return total / count

    def __repr__(self) -> str:
        return (
            f"BatchEdgeProcess(R={self._R}, n={self._n}, lazy={self.lazy}, "
            f"t={self._t})"
        )
