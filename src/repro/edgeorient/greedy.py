"""The greedy edge orientation protocol and its lazy Markov chain (§6).

Each step an undirected edge {u, w} arrives with u, w distinct i.u.r.
vertices; the greedy protocol orients it from the endpoint with smaller
discrepancy (outdeg − indeg) to the one with larger, so the smaller
discrepancy rises by 1 and the larger falls by 1 (ties: one of each,
symmetric).

Two stepping modes:

* ``lazy=True`` — the paper's Markov chain 𝔐: an i.u.r. bit b gates
  the move, making the chain aperiodic (Remark 1) at the cost of a
  ≈2× slowdown;
* ``lazy=False`` — the original Ajtai et al. protocol (every arriving
  edge is oriented).

The simulator stores per-vertex discrepancies (vertices exchangeable;
the canonical state is the sorted tuple).  The hot loop pre-draws
randomness in chunks so multi-million-step runs (E4/E8 need Θ(n² ln² n)
steps) stay fast.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.edgeorient.state import canonical_discrepancies
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["EdgeOrientationProcess"]

_CHUNK = 8192


class EdgeOrientationProcess:
    """Stateful simulator of the greedy edge orientation protocol."""

    def __init__(
        self,
        n_or_state: Union[int, Iterable[int]],
        *,
        lazy: bool = True,
        seed: SeedLike = None,
    ):
        if isinstance(n_or_state, (int, np.integer)):
            n = check_positive_int("n", int(n_or_state))
            if n < 2:
                raise ValueError("edge orientation needs n >= 2 vertices")
            d = np.zeros(n, dtype=np.int64)
        else:
            d = np.asarray(list(n_or_state), dtype=np.int64)
            if d.ndim != 1 or d.shape[0] < 2:
                raise ValueError("state must be a vector of >= 2 discrepancies")
            if int(d.sum()) != 0:
                raise ValueError(
                    f"discrepancies must sum to 0, got {int(d.sum())}"
                )
        self._d = d
        self.lazy = bool(lazy)
        self._rng = as_generator(seed)
        self._t = 0
        # Pre-drawn randomness buffers (refilled lazily).
        self._buf_pos = _CHUNK
        self._pairs: np.ndarray | None = None
        self._bits: np.ndarray | None = None

    # -- state access --------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self._d.shape[0])

    @property
    def t(self) -> int:
        """Steps executed (arrivals, including lazy no-ops)."""
        return self._t

    @property
    def discrepancies(self) -> np.ndarray:
        """Live per-vertex discrepancy array (read-only use)."""
        return self._d

    @property
    def state(self) -> tuple[int, ...]:
        """Canonical (sorted descending) state tuple."""
        return canonical_discrepancies(self._d)

    @property
    def unfairness(self) -> int:
        """max_v |outdeg(v) − indeg(v)|."""
        return int(np.abs(self._d).max())

    # -- stepping -------------------------------------------------------------

    def _refill(self) -> None:
        rng = self._rng
        n = self.n
        u = rng.integers(0, n, size=_CHUNK)
        w = rng.integers(0, n - 1, size=_CHUNK)
        w += w >= u  # uniform over distinct pairs
        self._pairs = np.stack([u, w], axis=1)
        self._bits = rng.random(_CHUNK) < 0.5 if self.lazy else np.ones(_CHUNK, bool)
        self._buf_pos = 0

    def step(self) -> None:
        """One arrival: sample a distinct pair (and lazy bit), orient greedily."""
        if self._buf_pos >= _CHUNK:
            self._refill()
        u, w = self._pairs[self._buf_pos]
        move = self._bits[self._buf_pos]
        self._buf_pos += 1
        self._t += 1
        if not move:
            return
        d = self._d
        if d[u] >= d[w]:
            d[u] -= 1
            d[w] += 1
        else:
            d[w] -= 1
            d[u] += 1

    def run(self, steps: int) -> "EdgeOrientationProcess":
        """Execute *steps* arrivals; returns self."""
        for _ in range(steps):
            self.step()
        return self

    def trajectory_unfairness(self, steps: int, every: int = 1) -> np.ndarray:
        """Run *steps* arrivals recording the unfairness every *every* steps."""
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        out = [self.unfairness]
        for k in range(1, steps + 1):
            self.step()
            if k % every == 0:
                out.append(self.unfairness)
        return np.asarray(out, dtype=np.float64)

    def run_until_unfairness(self, target: int, max_steps: int) -> int:
        """Steps until unfairness ≤ *target* (−1 if not within *max_steps*)."""
        if self.unfairness <= target:
            return 0
        # Check cheaply: unfairness moves by at most 1 per step, so only
        # re-scan when the running bound could have crossed the target.
        for k in range(1, max_steps + 1):
            self.step()
            if self.unfairness <= target:
                return k
        return -1

    def mean_unfairness(self, steps: int, *, burn_in: int = 0, every: int = 1) -> float:
        """Time-average unfairness over a run (after *burn_in* arrivals)."""
        self.run(burn_in)
        vals = self.trajectory_unfairness(steps, every=every)
        return float(vals[1:].mean())

    def __repr__(self) -> str:
        return (
            f"EdgeOrientationProcess(n={self.n}, lazy={self.lazy}, t={self._t}, "
            f"unfairness={self.unfairness})"
        )
