"""Exact transition kernel of the lazy edge orientation chain (§6).

For small n we enumerate the reachable space Ψ and build the dense
kernel of the paper's Markov chain 𝔐: with probability ½ nothing
happens (the bit b of Remark 1), otherwise a uniform pair of distinct
vertices is greedily oriented.  Since vertices are exchangeable, a pair
of *values* (a, b) with a ≥ b is drawn with probability
``c_a·c_b / C(n,2)`` (a ≠ b) or ``C(c_a, 2) / C(n,2)`` (a = b), where
c_v counts vertices at discrepancy v.

Used by E4/E9 to compute the exact mixing time of the chain and compare
it against Corollary 6.4 / Theorem 2.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import obs
from repro.edgeorient.state import enumerate_reachable_states
from repro.markov.chain import FiniteMarkovChain

__all__ = ["edge_orientation_kernel", "pair_transitions"]


def pair_transitions(state: tuple[int, ...]) -> list[tuple[tuple[int, ...], float]]:
    """Non-lazy successor states with probabilities (uniform distinct pair).

    Returns (successor, probability) with probabilities summing to 1.
    """
    n = len(state)
    total_pairs = n * (n - 1) / 2.0
    counts = Counter(state)
    values = sorted(counts, reverse=True)
    out: list[tuple[tuple[int, ...], float]] = []
    for ia, a in enumerate(values):
        for b in values[ia:]:
            if a == b:
                ways = counts[a] * (counts[a] - 1) / 2.0
            else:
                ways = counts[a] * counts[b]
            if ways <= 0:
                continue
            lst = list(state)
            lst.remove(a)
            lst.remove(b)
            lst.extend([a - 1, b + 1])  # greedy: larger disc falls, smaller rises
            succ = tuple(sorted(lst, reverse=True))
            out.append((succ, ways / total_pairs))
    return out


def edge_orientation_kernel(n: int, *, lazy: bool = True) -> FiniteMarkovChain:
    """Dense kernel of the (lazy) greedy chain on the reachable space Ψ.

    ``lazy=False`` builds the original non-lazy protocol's kernel, which
    is periodic for some n — the tests use it to machine-verify why the
    paper's Remark 1 introduces the bit b.
    """
    with obs.span("edgeorient/kernel-build", n=n, lazy=lazy):
        states = enumerate_reachable_states(n)
        index = {s: i for i, s in enumerate(states)}
        size = len(states)
        P = np.zeros((size, size), dtype=np.float64)
        move_weight = 0.5 if lazy else 1.0
        for i, s in enumerate(states):
            if lazy:
                P[i, i] += 0.5
            for succ, p in pair_transitions(s):
                P[i, index[succ]] += move_weight * p
        chain = FiniteMarkovChain(states, P)
    if obs.enabled():
        reg = obs.metrics()
        reg.counter("edgeorient.kernel_builds").inc()
        reg.gauge("edgeorient.state_space").set(size)
    return chain
