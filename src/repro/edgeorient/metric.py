"""The path-coupling metric Δ of Definitions 6.1–6.3, computed exactly.

The §6 analysis equips the reachable space Ψ (in the class-vector
representation) with a bespoke integer metric:

* y ∈ Ḡ(x)  (Definition 6.1):  x = y ± (e_λ − 2e_{λ+1} + e_{λ+2})
  — distance-1 pairs;
* y ∈ S̄_k(x) (Definition 6.2): x = y ± (e_λ − e_{λ+1} − e_{λ+k} +
  e_{λ+k+1}) with the k classes strictly between λ and λ+k+1 empty in
  the *larger* vector — distance-k pairs;
* Δ(x, y)  (Definition 6.3): the induced shortest-path distance, with
  Ḡ hops costing 1 and a single terminal S̄_k hop costing k.

Γ = Ḡ ∪ ⋃_k S̄_k is the set of pairs the §6 coupling is defined on.
This module enumerates Γ and computes Δ exactly (Dijkstra on the
weighted pair graph) for small n, which is what lets the tests
machine-verify Claim 6.1 (Δ is a metric) and Lemmas 6.2–6.3 (the
coupling contracts on Γ).
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from repro.edgeorient.state import (
    discrepancies_to_xvector,
    enumerate_reachable_states,
    num_classes,
)

__all__ = ["EdgeOrientationMetric"]

XVec = tuple[int, ...]


def _apply(x: XVec, deltas: dict[int, int]) -> XVec | None:
    """Apply class-count deltas (0-based positions); None if any count < 0."""
    lst = list(x)
    for pos, dv in deltas.items():
        if pos < 0 or pos >= len(lst):
            return None
        lst[pos] += dv
        if lst[pos] < 0:
            return None
    return tuple(lst)


class EdgeOrientationMetric:
    """Exact Δ on the reachable space Ψ for a fixed vertex count n.

    Intended for small n (|Ψ| grows quickly); everything is precomputed
    at construction: Ψ in both representations, the Ḡ adjacency, the
    S̄_k pair list, and all-pairs Δ.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("edge orientation needs n >= 2")
        self.n = n
        self.k_classes = num_classes(n)
        disc_states = enumerate_reachable_states(n)
        self.states: list[XVec] = [
            discrepancies_to_xvector(s, n) for s in disc_states
        ]
        self.disc_states = disc_states
        self._index = {x: i for i, x in enumerate(self.states)}
        self._in_psi = set(self.states)
        self._g_edges = self._build_g_edges()
        self._s_pairs = self._build_s_pairs()
        self._dist = self._all_pairs_delta()

    # -- Γ construction -------------------------------------------------------

    def g_neighbors(self, x: XVec) -> list[XVec]:
        """Ḡ(x): distance-1 neighbors per Definition 6.1 (both signs)."""
        out = []
        k = self.k_classes
        for lam in range(0, k - 2):  # 0-based λ, pattern spans λ, λ+1, λ+2
            for sign in (+1, -1):
                # x = y + sign·(e_λ − 2e_{λ+1} + e_{λ+2})  ⇒  y = x − sign·(…)
                y = _apply(x, {lam: -sign, lam + 1: 2 * sign, lam + 2: -sign})
                if y is not None and y in self._in_psi and y != x:
                    out.append(y)
        return out

    def s_pairs_of(self, x: XVec) -> list[tuple[XVec, int]]:
        """All (y, k) with y ∈ S̄_k(x), k ≥ 1 (Definition 6.2, both signs)."""
        out = []
        kc = self.k_classes
        for k in range(1, kc - 1):
            for lam in range(0, kc - k - 1):  # pattern spans λ … λ+k+1
                # Forward: x = y + e_λ − e_{λ+1} − e_{λ+k} + e_{λ+k+1},
                # zeros in x between λ and λ+k+1 exclusive.
                if all(x[i] == 0 for i in range(lam + 1, lam + k + 1)):
                    y = _apply(
                        x, {lam: -1, lam + 1: +1, lam + k: +1, lam + k + 1: -1}
                    )
                    if y is not None and y in self._in_psi and y != x:
                        out.append((y, k))
                # Backward: x = y − e_λ + e_{λ+1} + e_{λ+k} − e_{λ+k+1},
                # zeros in y between λ and λ+k+1 exclusive.
                y = _apply(x, {lam: +1, lam + 1: -1, lam + k: -1, lam + k + 1: +1})
                if (
                    y is not None
                    and y in self._in_psi
                    and y != x
                    and all(y[i] == 0 for i in range(lam + 1, lam + k + 1))
                ):
                    out.append((y, k))
        return out

    def _build_g_edges(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.states)
        for x in self.states:
            for y in self.g_neighbors(x):
                g.add_edge(x, y)
        return g

    def _build_s_pairs(self) -> dict[tuple[XVec, XVec], int]:
        pairs: dict[tuple[XVec, XVec], int] = {}
        for x in self.states:
            for y, k in self.s_pairs_of(x):
                key = (x, y)
                if key not in pairs or pairs[key] > k:
                    pairs[key] = k
        return pairs

    # -- Δ computation ---------------------------------------------------------

    def _all_pairs_delta(self) -> dict[tuple[XVec, XVec], float]:
        """Definition 6.3 distance for all pairs.

        Δ is the shortest-path closure of the Γ weights: Ḡ hops cost 1,
        S̄_k hops cost k, hops compose freely.  (A literal last-hop-only
        reading of the recursion in Definition 6.3 fails the triangle
        inequality at n = 6, so Claim 6.1 forces the closure reading;
        the two coincide on Γ pairs — asserted by
        :meth:`check_gamma_distances` in the tests.)
        """
        g = nx.Graph()
        g.add_nodes_from(self.states)
        for x, y in self._g_edges.edges():
            g.add_edge(x, y, weight=1)
        for (x, y), k in self._s_pairs.items():
            if g.has_edge(x, y):
                g[x][y]["weight"] = min(g[x][y]["weight"], k)
            else:
                g.add_edge(x, y, weight=k)
        dist = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
        out: dict[tuple[XVec, XVec], float] = {}
        inf = float("inf")
        for x in self.states:
            dx = dist.get(x, {})
            for y in self.states:
                out[(x, y)] = float(dx.get(y, inf))
        return out

    def check_gamma_distances(self) -> None:
        """Assert every Γ pair's closure distance equals its nominal weight.

        This is what makes the closure metric interchangeable with the
        paper's Γ weights in the Path Coupling Lemma (additive path
        decompositions use the nominal weights).
        """
        for x, y, k in self.gamma_pairs():
            d = self._dist[(x, y)]
            if d != k:
                raise AssertionError(
                    f"Γ pair ({x}, {y}) has closure distance {d} != nominal {k}"
                )

    def delta(self, x: XVec, y: XVec) -> float:
        """Δ(x, y); ``inf`` if y is unreachable from x through Γ."""
        if x not in self._in_psi or y not in self._in_psi:
            raise KeyError("state not in the reachable space Ψ")
        return self._dist[(x, y)]

    def gamma_pairs(self) -> Iterator[tuple[XVec, XVec, int]]:
        """All ordered pairs in Γ with their nominal distance.

        Ḡ pairs come with distance 1; S̄_k pairs with distance k.  The
        §6 coupling (and Lemmas 6.2/6.3) quantifies over exactly these.
        """
        seen: set[tuple[XVec, XVec]] = set()
        for x in self.states:
            for y in self.g_neighbors(x):
                if (x, y) not in seen:
                    seen.add((x, y))
                    yield x, y, 1
        for (x, y), k in self._s_pairs.items():
            if (x, y) not in seen:
                seen.add((x, y))
                yield x, y, k

    # -- diagnostics -----------------------------------------------------------

    def max_distance(self) -> float:
        """D = max Δ over Ψ × Ψ (the paper notes it is O(n²))."""
        return max(self._dist.values())

    def check_metric(self) -> None:
        """Machine-check of Claim 6.1: Δ is a finite metric on Ψ × Ψ.

        Raises ``AssertionError`` with a counterexample on failure.
        """
        states = self.states
        d = self._dist
        for x in states:
            assert d[(x, x)] == 0.0, f"Δ({x},{x}) != 0"
            for y in states:
                if x != y:
                    assert d[(x, y)] > 0, f"Δ({x},{y}) = 0 for x != y"
                assert d[(x, y)] < float("inf"), f"Δ({x},{y}) infinite"
                assert d[(x, y)] == d[(y, x)], f"asymmetry at ({x},{y})"
        for x in states:
            for y in states:
                for z in states:
                    if d[(x, z)] > d[(x, y)] + d[(y, z)] + 1e-9:
                        raise AssertionError(
                            f"triangle inequality fails: Δ({x},{z}) > "
                            f"Δ({x},{y}) + Δ({y},{z})"
                        )
