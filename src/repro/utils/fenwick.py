"""Fenwick (binary indexed) tree for O(log n) weighted sampling.

The scenario-A removal step draws a bin with probability proportional to
its load (distribution 𝒜(v), Definition 3.2 of the paper).  Recomputing a
cumulative sum each step would make every transition O(n); the Fenwick
tree keeps prefix sums under point updates in O(log n), which is what
makes the large-n simulators in :mod:`repro.balls` fast.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["FenwickTree"]


class FenwickTree:
    """Prefix-sum tree over ``n`` non-negative integer weights.

    Supports point update, prefix sum, and inverse-CDF search (``find``),
    each in O(log n).  Weights are stored as int64; the total must fit.
    """

    __slots__ = ("_n", "_tree")

    def __init__(self, weights: Iterable[int] | Sequence[int] | np.ndarray):
        w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.int64)
        if w.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if (w < 0).any():
            raise ValueError("weights must be non-negative")
        self._n = int(w.shape[0])
        # Linear-time construction: tree[i] accumulates its child ranges.
        tree = np.zeros(self._n + 1, dtype=np.int64)
        tree[1:] = w
        for i in range(1, self._n + 1):
            parent = i + (i & -i)
            if parent <= self._n:
                tree[parent] += tree[i]
        self._tree = tree

    def __len__(self) -> int:
        return self._n

    @property
    def total(self) -> int:
        """Sum of all weights."""
        return self.prefix_sum(self._n)

    def add(self, index: int, delta: int) -> None:
        """Add *delta* to the weight at zero-based *index*."""
        if not 0 <= index < self._n:
            raise IndexError(f"index {index} out of range [0, {self._n})")
        i = index + 1
        tree = self._tree
        n = self._n
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix_sum(self, count: int) -> int:
        """Sum of the first *count* weights (indices ``0..count-1``)."""
        if not 0 <= count <= self._n:
            raise IndexError(f"count {count} out of range [0, {self._n}]")
        s = 0
        i = count
        tree = self._tree
        while i > 0:
            s += tree[i]
            i -= i & -i
        return int(s)

    def get(self, index: int) -> int:
        """Return the weight at zero-based *index*."""
        return self.prefix_sum(index + 1) - self.prefix_sum(index)

    def find(self, target: int) -> int:
        """Return the smallest zero-based index ``i`` with prefix_sum(i+1) > target.

        Equivalently: with ``target`` drawn uniformly from
        ``[0, total)``, returns an index distributed proportionally to
        the weights.  Raises if *target* is out of range.
        """
        if target < 0 or target >= self.total:
            raise ValueError(f"target {target} out of range [0, {self.total})")
        idx = 0
        bitmask = 1 << (self._n.bit_length())
        tree = self._tree
        n = self._n
        remaining = target
        while bitmask > 0:
            nxt = idx + bitmask
            if nxt <= n and tree[nxt] <= remaining:
                idx = nxt
                remaining -= tree[nxt]
            bitmask >>= 1
        return idx  # zero-based: idx positions have cumulative <= target

    def sample(self, rng: np.random.Generator) -> int:
        """Draw an index with probability proportional to its weight."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot sample from an all-zero tree")
        return self.find(int(rng.integers(0, total)))

    def to_array(self) -> np.ndarray:
        """Materialize the current weights as an int64 array."""
        out = np.empty(self._n, dtype=np.int64)
        prev = 0
        for i in range(self._n):
            cur = self.prefix_sum(i + 1)
            out[i] = cur - prev
            prev = cur
        return out
