"""Plain-text tables for experiment and benchmark reports.

The benchmark harness prints paper-style rows (parameter sweeps with
measured vs. predicted columns).  :class:`Table` is a tiny dependency-free
formatter producing aligned monospace output suitable for logs and for
EXPERIMENTS.md transcription.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_si"]


def format_si(x: float, digits: int = 3) -> str:
    """Format *x* compactly with SI-ish magnitude (e.g. ``1.23e+06``)."""
    if x == 0:
        return "0"
    ax = abs(x)
    if 1e-3 <= ax < 1e6:
        if float(x).is_integer() and ax < 1e6:
            return str(int(x))
        return f"{x:.{digits}g}"
    return f"{x:.{digits}e}"


class Table:
    """Column-aligned plain-text table.

    >>> t = Table(["n", "measured", "bound"])
    >>> t.add_row([16, 44.2, 64])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; values are stringified (floats via :func:`format_si`)."""
        row = []
        for v in values:
            if isinstance(v, bool):
                row.append(str(v))
            elif isinstance(v, float):
                row.append(format_si(v))
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Return the formatted table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
