"""Reproducible random number generation.

Every stochastic entry point in the library accepts ``seed`` — either an
integer, ``None``, or an existing :class:`numpy.random.Generator` — and
normalizes it through :func:`as_generator`.  Experiments that fan out over
independent replicas derive per-replica streams with
:func:`spawn_generators`, which uses :class:`numpy.random.SeedSequence`
spawning so streams are statistically independent regardless of how many
workers consume them (the standard idiom for parallel Monte Carlo).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["SeedLike", "as_generator", "spawn_generators", "spawn_seeds"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged, so callers can
    thread one generator through a pipeline without reseeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> Sequence[np.random.SeedSequence]:
    """Spawn *n* independent :class:`~numpy.random.SeedSequence` children.

    If *seed* is a ``Generator`` we derive a root sequence from it by
    drawing entropy, keeping determinism when the caller passed a seeded
    generator.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Return *n* independent generators derived from *seed*.

    The streams are independent in the ``SeedSequence`` sense: each child
    is safe to hand to a separate process or replica.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def entropy_of(seed: SeedLike) -> Optional[int]:
    """Best-effort extraction of the root entropy of *seed* (for logging)."""
    if isinstance(seed, np.random.SeedSequence):
        ent = seed.entropy
        return int(ent) if isinstance(ent, int) else None
    if isinstance(seed, int):
        return seed
    return None
