"""Dependency-free ASCII sparklines and mini-plots.

The CLI and examples run in terminals without plotting stacks; a
sparkline column (`▁▂▃▅▇`) is enough to *see* a recovery trajectory or
a TV-decay curve next to its numbers.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["sparkline", "histogram_bars"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """Render values as a unicode sparkline string.

    Constant series render as all-low ticks; NaNs are rejected.
    ``lo``/``hi`` pin the scale (useful to share one scale across rows).
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if any(v != v for v in vals):
        raise ValueError("sparkline values must not contain NaN")
    vmin = min(vals) if lo is None else float(lo)
    vmax = max(vals) if hi is None else float(hi)
    if vmax <= vmin:
        return _TICKS[0] * len(vals)
    span = vmax - vmin
    out = []
    for v in vals:
        frac = (v - vmin) / span
        idx = min(int(frac * len(_TICKS)), len(_TICKS) - 1)
        out.append(_TICKS[idx])
    return "".join(out)


def histogram_bars(
    counts: Sequence[float],
    labels: Sequence[str] | None = None,
    *,
    width: int = 40,
) -> str:
    """Horizontal ASCII bar chart of non-negative counts."""
    vals = [float(c) for c in counts]
    if not vals:
        return ""
    if any(v < 0 for v in vals):
        raise ValueError("histogram counts must be non-negative")
    if labels is None:
        labels = [str(i) for i in range(len(vals))]
    if len(labels) != len(vals):
        raise ValueError("labels/counts length mismatch")
    peak = max(vals) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, v in zip(labels, vals):
        bar = "#" * int(round(width * v / peak))
        lines.append(f"{str(label).rjust(label_w)} | {bar} {v:g}")
    return "\n".join(lines)
