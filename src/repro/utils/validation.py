"""Small argument-validation helpers shared across the library.

Validation failures raise ``ValueError``/``TypeError`` with the offending
name and value so experiment scripts fail loudly at configuration time,
not deep inside a million-step simulation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
    "check_load_vector",
]


def check_positive_int(name: str, value: Any) -> int:
    """Return *value* as int, requiring it to be a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(name: str, value: Any) -> int:
    """Return *value* as int, requiring it to be a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Any) -> float:
    """Return *value* as float, requiring 0 <= value <= 1."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_load_vector(v: Any, *, normalized: bool = False) -> np.ndarray:
    """Validate and return *v* as an int64 load vector.

    Requires non-negative integer entries; with ``normalized=True`` also
    requires the non-increasing ordering of §3.1.
    """
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise ValueError(f"load vector must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("load vector must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise TypeError("load vector entries must be integers")
    arr = arr.astype(np.int64, copy=True)
    if (arr < 0).any():
        raise ValueError("load vector entries must be non-negative")
    if normalized and (np.diff(arr) > 0).any():
        raise ValueError("load vector is not normalized (non-increasing)")
    return arr
