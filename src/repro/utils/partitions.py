"""Enumeration of normalized load vectors (integer partitions).

The state space Ω_m of the paper (§3.1) is the set of non-negative,
non-increasing n-vectors summing to m — i.e. partitions of m into at most
n parts, zero-padded to length n.  Exact Markov-chain analysis
(:mod:`repro.markov.exact`) enumerates this space for small (n, m).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

import numpy as np

__all__ = [
    "iter_partitions",
    "num_partitions",
    "partition_index",
    "all_partitions",
]


def iter_partitions(m: int, n: int) -> Iterator[tuple[int, ...]]:
    """Yield all partitions of *m* into at most *n* parts, zero-padded.

    Vectors are yielded in lexicographically decreasing order as
    non-increasing tuples of length *n*, e.g. ``iter_partitions(3, 3)``
    yields ``(3,0,0), (2,1,0), (1,1,1)``.
    """
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")

    def rec(remaining: int, max_part: int, slots: int) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield (0,) * slots
            return
        if slots == 0 or max_part * slots < remaining:
            return
        first_hi = min(max_part, remaining)
        for first in range(first_hi, 0, -1):
            for rest in rec(remaining - first, first, slots - 1):
                yield (first,) + rest

    yield from rec(m, m, n)


@lru_cache(maxsize=None)
def num_partitions(m: int, n: int) -> int:
    """Count partitions of *m* into at most *n* parts (|Ω_m| for n bins).

    Uses the recurrence p(m, n) = p(m, n-1) + p(m-n, n).
    """
    if m < 0:
        return 0
    if m == 0:
        return 1
    if n <= 0:
        return 0
    return num_partitions(m, n - 1) + num_partitions(m - n, n)


def all_partitions(m: int, n: int) -> list[tuple[int, ...]]:
    """Materialize :func:`iter_partitions` as a list (the state ordering)."""
    return list(iter_partitions(m, n))


def partition_index(states: list[tuple[int, ...]]) -> dict[tuple[int, ...], int]:
    """Build the state → row-index map used by exact transition kernels."""
    return {s: i for i, s in enumerate(states)}


def normalize(v) -> tuple[int, ...]:
    """Return the normalized (sorted non-increasing) tuple of *v* (§3.1)."""
    arr = np.asarray(v)
    return tuple(int(x) for x in np.sort(arr)[::-1])
