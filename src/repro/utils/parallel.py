"""Process-level parallel replica execution.

Monte Carlo replica sweeps are embarrassingly parallel.  This module
provides a tiny ``multiprocessing``-backed map that pairs each work
item with an independent :class:`numpy.random.SeedSequence` child (the
reproducible-parallel-RNG idiom of the HPC guides: spawn streams, never
share a generator across processes).

The function to run must be a module-level callable (picklable).  With
``processes=1`` everything runs inline — handy for tests and for
platforms where fork semantics are awkward — and results are identical
to the parallel path because the seeds are derived the same way.

When :mod:`repro.obs` is enabled, each call runs against a fresh scoped
metrics registry whose snapshot rides back with the result and is
merged into the parent's default registry — so fleet metrics survive
the process boundary, identically on the inline and pooled paths.

When a :class:`~repro.obs.recorder.RunRecorder` is additionally
installed (an ``observe_run`` campaign), each shard of items gets a
telemetry lane over the fleet bus (:mod:`repro.obs.bus`): workers ship
decimated probe points and monitor events to the parent *as they run*
— tagged ``worker=k`` by shard index, not OS pid, so lane assignment
is deterministic — plus periodic heartbeats into the separate
``heartbeats.jsonl`` stream.  ``repro obs watch`` can therefore
live-tail a parallel campaign.  A worker killed mid-shard surfaces as
a ``worker_lost`` monitor event on the parent artifact before the pool
failure propagates.

Items are split into ``processes`` contiguous shards.  Per-item seeds
are spawned before sharding, so results — and, for a fixed process
count, the finished ``timeseries.jsonl`` — are a function of the seed
alone.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro import obs
from repro.utils.rng import SeedLike, spawn_seeds

__all__ = ["parallel_replica_map"]

# Worker-side bus state, installed by the pool initializer (a Queue
# cannot ride inside pickled task payloads; inheritance via the
# initializer works for both fork and spawn start methods).
_WORKER_QUEUE: Any = None
_WORKER_HEARTBEAT_S: float = 0.0


def _bus_worker_init(queue, enabled, probe_every, heartbeat_s) -> None:
    """Pool initializer: adopt the bus queue + the parent's obs switches."""
    global _WORKER_QUEUE, _WORKER_HEARTBEAT_S
    _WORKER_QUEUE = queue
    _WORKER_HEARTBEAT_S = float(heartbeat_s)
    from repro.obs import runtime, set_tracer

    # A forked child inherits the parent's recorder/tracer objects but
    # must never write through them (shared file descriptors); a
    # spawned child starts blank and needs the switches replayed.
    runtime.set_recorder(None)
    set_tracer(None)
    runtime.set_probe_interval(probe_every)
    if enabled:
        runtime.enable()
    else:
        runtime.disable()


def _run_shard(shard, fn, pairs, kwargs, capture, sender, heartbeat):
    """Run one shard's items; returns ``[(result, metrics_snapshot), ...]``.

    With *sender* installed as the active recorder, engine probe points
    and monitor events emitted inside ``fn`` stream onto the bus (or
    straight into the parent recorder on the inline path).  The shard
    always says ``bye`` on the way out — also when an item raises — so
    only a killed process leaves a silent lane.
    """
    from repro.obs import runtime, set_tracer
    from repro.obs.metrics import scoped_registry

    outs: list[tuple[Any, dict | None]] = []
    detach = capture or sender is not None
    prev_rec = runtime.set_recorder(sender) if detach else None
    prev_tracer = set_tracer(None) if detach else None
    if heartbeat is not None:
        heartbeat.start()
    try:
        for item, seed_seq in pairs:
            if capture:
                # Metrics go to a scratch registry that rides back with
                # the result and merges in the parent, item by item.
                with scoped_registry() as reg:
                    out = fn(item, seed_seq, **kwargs)
                outs.append((out, reg.snapshot()))
            else:
                outs.append((fn(item, seed_seq, **kwargs), None))
            if sender is not None:
                sender.items_done += 1
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if sender is not None:
            try:
                sender.bye()
            except Exception:  # pragma: no cover - queue gone at teardown
                pass
        if detach:
            runtime.set_recorder(prev_rec)
            set_tracer(prev_tracer)
    return outs


def _call_shard(payload):
    """Pool entry point: build this shard's telemetry lane, run it."""
    shard, fn, pairs, kwargs, capture = payload
    sender = heartbeat = None
    if _WORKER_QUEUE is not None:
        from repro.obs.bus import worker_telemetry

        sender, heartbeat = worker_telemetry(
            shard,
            queue=_WORKER_QUEUE,
            items_total=len(pairs),
            heartbeat_s=_WORKER_HEARTBEAT_S,
        )
    return _run_shard(shard, fn, pairs, kwargs, capture, sender, heartbeat)


def _shard_slices(n_items: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shard bounds, sizes differing by <= 1."""
    base, extra = divmod(n_items, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for k in range(shards):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def parallel_replica_map(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    seed: SeedLike = None,
    processes: int | None = None,
    chunksize: int = 1,
    heartbeat_s: float | None = None,
    **kwargs,
) -> list[Any]:
    """Evaluate ``fn(item, seed_seq, **kwargs)`` for each item.

    Each call receives its own spawned ``SeedSequence``.  ``processes``
    defaults to ``min(len(items), cpu_count())``; ``processes=1`` runs
    inline (no pool).  Results preserve input order.  Worker exceptions
    propagate to the caller on both paths; a worker process *killed*
    mid-shard raises :class:`~concurrent.futures.process.BrokenProcessPool`
    after a ``worker_lost`` monitor event lands on the run artifact.

    *heartbeat_s* overrides the worker heartbeat period (telemetry-bus
    campaigns only); *chunksize* is accepted for backward compatibility
    and ignored — items are split into ``processes`` contiguous shards,
    one telemetry lane each.
    """
    del chunksize  # sharding replaced chunked Pool.map in PR 7
    items = list(items)
    seeds = spawn_seeds(seed, len(items))
    pairs = list(zip(items, seeds))
    capture = obs.enabled()
    if processes is None:
        processes = min(len(items), mp.cpu_count()) or 1
    inline = processes <= 1 or len(items) <= 1
    shards = 1 if inline else min(processes, len(items))
    from repro.obs import runtime
    from repro.obs.bus import DEFAULT_HEARTBEAT_S

    recorder = runtime.get_recorder() if capture else None
    hb_s = DEFAULT_HEARTBEAT_S if heartbeat_s is None else float(heartbeat_s)
    with obs.span("parallel/map", items=len(items), processes=shards):
        if inline:
            sender = heartbeat = None
            if recorder is not None:
                from repro.obs.bus import worker_telemetry

                sender, heartbeat = worker_telemetry(
                    0, recorder=recorder, items_total=len(items),
                    heartbeat_s=hb_s,
                )
            outs = _run_shard(0, fn, pairs, kwargs, capture, sender, heartbeat)
        else:
            outs = _pooled_map(
                fn, pairs, kwargs, capture, shards, recorder, hb_s
            )
    if capture:
        reg = obs.metrics()
        reg.counter("parallel.replicas").inc(len(items))
        for _, snap in outs:
            if snap:
                reg.merge(snap)
    return [result for result, _ in outs]


def _pooled_map(fn, pairs, kwargs, capture, shards, recorder, heartbeat_s):
    """Run the sharded pool, bus-connected when a recorder is active."""
    from repro.obs import runtime
    from repro.obs.bus import TelemetryBus

    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    bus = (
        TelemetryBus(recorder, ctx, heartbeat_s=heartbeat_s).start()
        if recorder is not None
        else None
    )
    payloads = [
        (k, fn, pairs[start:stop], kwargs, capture)
        for k, (start, stop) in enumerate(_shard_slices(len(pairs), shards))
    ]
    shard_outs: list[list | None] = [None] * len(payloads)
    lost: set[int] = set()
    broken: BrokenProcessPool | None = None
    try:
        with ProcessPoolExecutor(
            max_workers=shards,
            mp_context=ctx,
            initializer=_bus_worker_init,
            initargs=(
                bus.queue if bus is not None else None,
                capture,
                runtime.probe_interval(),
                heartbeat_s,
            ),
        ) as ex:
            futures = [ex.submit(_call_shard, p) for p in payloads]
            for k, fut in enumerate(futures):
                try:
                    shard_outs[k] = fut.result()
                except BrokenProcessPool as e:
                    # A killed worker breaks the whole pool; keep
                    # collecting so every dead lane is accounted for.
                    broken = e
                    lost.add(k)
    finally:
        if bus is not None:
            expected = set(range(len(payloads))) - lost
            bus.finish(expected)
            # A shard whose bye made it onto the queue finished its work
            # even if the pool broke before its result transferred; only
            # silent lanes are reported lost.
            for k in sorted(lost - bus.byes):
                recorder.record_monitor(
                    {
                        "monitor": "worker_lost",
                        "series": "parallel/workers",
                        "items": len(payloads[k][2]),
                        "shards": len(payloads),
                    },
                    worker=k,
                )
    if broken is not None:
        raise broken
    return [pair for out in shard_outs for pair in (out or [])]
