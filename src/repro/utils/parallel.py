"""Process-level parallel replica execution.

Monte Carlo replica sweeps are embarrassingly parallel.  This module
provides a tiny ``multiprocessing``-backed map that pairs each work
item with an independent :class:`numpy.random.SeedSequence` child (the
reproducible-parallel-RNG idiom of the HPC guides: spawn streams, never
share a generator across processes).

The function to run must be a module-level callable (picklable).  With
``processes=1`` everything runs inline — handy for tests and for
platforms where fork semantics are awkward — and results are identical
to the parallel path because the seeds are derived the same way.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Sequence

from repro.utils.rng import SeedLike, spawn_seeds

__all__ = ["parallel_replica_map"]


def _call(payload):
    fn, item, seed_seq, kwargs = payload
    return fn(item, seed_seq, **kwargs)


def parallel_replica_map(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    seed: SeedLike = None,
    processes: int | None = None,
    chunksize: int = 1,
    **kwargs,
) -> list[Any]:
    """Evaluate ``fn(item, seed_seq, **kwargs)`` for each item.

    Each call receives its own spawned ``SeedSequence``.  ``processes``
    defaults to ``min(len(items), cpu_count())``; ``processes=1`` runs
    inline (no pool).  Results preserve input order.
    """
    items = list(items)
    seeds = spawn_seeds(seed, len(items))
    payloads = [(fn, item, s, kwargs) for item, s in zip(items, seeds)]
    if processes is None:
        processes = min(len(items), mp.cpu_count()) or 1
    if processes <= 1 or len(items) <= 1:
        return [_call(p) for p in payloads]
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with ctx.Pool(processes=processes) as pool:
        return pool.map(_call, payloads, chunksize=chunksize)
