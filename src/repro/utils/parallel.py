"""Process-level parallel replica execution.

Monte Carlo replica sweeps are embarrassingly parallel.  This module
provides a tiny ``multiprocessing``-backed map that pairs each work
item with an independent :class:`numpy.random.SeedSequence` child (the
reproducible-parallel-RNG idiom of the HPC guides: spawn streams, never
share a generator across processes).

The function to run must be a module-level callable (picklable).  With
``processes=1`` everything runs inline — handy for tests and for
platforms where fork semantics are awkward — and results are identical
to the parallel path because the seeds are derived the same way.

When :mod:`repro.obs` is enabled, each call runs against a fresh scoped
metrics registry whose snapshot rides back with the result and is
merged into the parent's default registry — so fleet metrics survive
the process boundary, identically on the inline and pooled paths.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Sequence

from repro import obs
from repro.utils.rng import SeedLike, spawn_seeds

__all__ = ["parallel_replica_map"]


def _call(payload):
    fn, item, seed_seq, kwargs, capture = payload
    if not capture:
        return fn(item, seed_seq, **kwargs), None
    from repro.obs import runtime, set_tracer
    from repro.obs.metrics import scoped_registry

    # Metrics go to a scratch registry that rides back with the result.
    # The recorder and tracer are detached for the call: a forked worker
    # must not write to the parent's events.jsonl file descriptor, and
    # the inline path mirrors that so both paths behave identically.
    with scoped_registry() as reg:
        prev_rec = runtime.set_recorder(None)
        prev_tracer = set_tracer(None)
        try:
            out = fn(item, seed_seq, **kwargs)
        finally:
            runtime.set_recorder(prev_rec)
            set_tracer(prev_tracer)
    return out, reg.snapshot()


def parallel_replica_map(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    seed: SeedLike = None,
    processes: int | None = None,
    chunksize: int = 1,
    **kwargs,
) -> list[Any]:
    """Evaluate ``fn(item, seed_seq, **kwargs)`` for each item.

    Each call receives its own spawned ``SeedSequence``.  ``processes``
    defaults to ``min(len(items), cpu_count())``; ``processes=1`` runs
    inline (no pool).  Results preserve input order.  Worker exceptions
    propagate to the caller on both paths.
    """
    items = list(items)
    seeds = spawn_seeds(seed, len(items))
    capture = obs.enabled()
    payloads = [(fn, item, s, kwargs, capture) for item, s in zip(items, seeds)]
    if processes is None:
        processes = min(len(items), mp.cpu_count()) or 1
    inline = processes <= 1 or len(items) <= 1
    with obs.span("parallel/map", items=len(items),
                  processes=1 if inline else processes):
        if inline:
            outs = [_call(p) for p in payloads]
        else:
            ctx = (
                mp.get_context("fork")
                if "fork" in mp.get_all_start_methods()
                else mp.get_context()
            )
            with ctx.Pool(processes=processes) as pool:
                outs = pool.map(_call, payloads, chunksize=chunksize)
    if capture:
        reg = obs.metrics()
        reg.counter("parallel.replicas").inc(len(items))
        for _, snap in outs:
            if snap:
                reg.merge(snap)
    return [result for result, _ in outs]
