"""Process-level parallel replica execution.

Monte Carlo replica sweeps are embarrassingly parallel.  This module
provides a tiny ``multiprocessing``-backed map that pairs each work
item with an independent :class:`numpy.random.SeedSequence` child (the
reproducible-parallel-RNG idiom of the HPC guides: spawn streams, never
share a generator across processes).

The function to run must be a module-level callable (picklable).  With
``processes=1`` everything runs inline — handy for tests and for
platforms where fork semantics are awkward — and results are identical
to the parallel path because the seeds are derived the same way.

When :mod:`repro.obs` is enabled, each call runs against a fresh scoped
metrics registry whose snapshot rides back with the result and is
merged into the parent's default registry — so fleet metrics survive
the process boundary, identically on the inline and pooled paths.

When a :class:`~repro.obs.recorder.RunRecorder` is additionally
installed (an ``observe_run`` campaign), each shard of items gets a
telemetry lane over the fleet bus (:mod:`repro.obs.bus`): workers ship
decimated probe points and monitor events to the parent *as they run*
— tagged ``worker=k`` by shard index, not OS pid, so lane assignment
is deterministic — plus periodic heartbeats into the separate
``heartbeats.jsonl`` stream.  ``repro obs watch`` can therefore
live-tail a parallel campaign.  A worker killed mid-shard surfaces as
a ``worker_lost`` monitor event on the parent artifact before the pool
failure propagates.

Items are split into ``processes`` contiguous shards.  Per-item seeds
are spawned before sharding, so results — and, for a fixed process
count, the finished ``timeseries.jsonl`` — are a function of the seed
alone.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro import obs
from repro.utils.rng import SeedLike, spawn_seeds

__all__ = ["parallel_replica_map"]

# Worker-side bus state, installed by the pool initializer (a Queue
# cannot ride inside pickled task payloads; inheritance via the
# initializer works for both fork and spawn start methods).
_WORKER_QUEUE: Any = None
_WORKER_HEARTBEAT_S: float = 0.0


def _bus_worker_init(queue, enabled, probe_every, heartbeat_s) -> None:
    """Pool initializer: adopt the bus queue + the parent's obs switches."""
    global _WORKER_QUEUE, _WORKER_HEARTBEAT_S
    _WORKER_QUEUE = queue
    _WORKER_HEARTBEAT_S = float(heartbeat_s)
    from repro.obs import runtime, set_tracer

    # A forked child inherits the parent's recorder/tracer objects but
    # must never write through them (shared file descriptors); a
    # spawned child starts blank and needs the switches replayed.
    runtime.set_recorder(None)
    set_tracer(None)
    runtime.set_probe_interval(probe_every)
    if enabled:
        runtime.enable()
    else:
        runtime.disable()


def _run_shard(shard, fn, pairs, kwargs, capture, sender, heartbeat,
               fleet_ckpt=None):
    """Run one shard's items; returns ``[(result, metrics_snapshot), ...]``.

    With *sender* installed as the active recorder, engine probe points
    and monitor events emitted inside ``fn`` stream onto the bus (or
    straight into the parent recorder on the inline path).  The shard
    always says ``bye`` on the way out — also when an item raises — so
    only a killed process leaves a silent lane.

    With *fleet_ckpt* (a :class:`repro.checkpoint.manager.FleetCheckpoint`),
    the shard resumes at item granularity: completed ``(result,
    snapshot)`` pairs are preloaded from ``shards/shard-<k>.json`` and
    skipped, the lane's stream cursors continue from the checkpointed
    values, and every newly completed item commits an updated shard
    file atomically.  Per-item spawned seed streams make the replay of
    an interrupted item exact, so item granularity loses at most one
    item of work and never determinism.
    """
    import os as _os

    from repro.obs import runtime, set_tracer
    from repro.obs.metrics import scoped_registry

    outs: list[tuple[Any, dict | None]] = []
    cursors: list[list[int]] = []
    if fleet_ckpt is not None:
        doc = fleet_ckpt.read(shard)
        if doc:
            outs = [(result, snap) for result, snap in doc.get("done", [])]
            cursors = [list(map(int, c)) for c in doc.get("cursors", [])]
            while len(cursors) < len(outs):  # pre-cursor shard docs
                cursors.append([int(doc.get("records_sent", 0)),
                                int(doc.get("monitors_sent", 0))])
            if sender is not None:
                sender.records_sent = int(doc.get("records_sent", 0))
                sender.monitors_sent = int(doc.get("monitors_sent", 0))
    detach = capture or sender is not None
    prev_rec = runtime.set_recorder(sender) if detach else None
    prev_tracer = set_tracer(None) if detach else None
    if sender is not None:
        sender.items_done = len(outs)
    if heartbeat is not None:
        heartbeat.start()
    try:
        for item, seed_seq in pairs[len(outs):]:
            if capture:
                # Metrics go to a scratch registry that rides back with
                # the result and merges in the parent, item by item.
                with scoped_registry() as reg:
                    out = fn(item, seed_seq, **kwargs)
                outs.append((out, reg.snapshot()))
            else:
                outs.append((fn(item, seed_seq, **kwargs), None))
            if sender is not None:
                sender.items_done += 1
            if fleet_ckpt is not None:
                # Cumulative per-item stream cursors: a resume needs to
                # know how much telemetry each *item* had shipped, so it
                # can roll the lane back to the last item whose records
                # the (possibly killed) parent actually wrote to disk.
                cursors.append([
                    sender.records_sent if sender is not None else 0,
                    sender.monitors_sent if sender is not None else 0,
                ])
                fleet_ckpt.write(shard, {
                    "done": [[result, snap] for result, snap in outs],
                    "cursors": cursors,
                    "records_sent":
                        sender.records_sent if sender is not None else 0,
                    "monitors_sent":
                        sender.monitors_sent if sender is not None else 0,
                })
                if _os.environ.get("REPRO_CRASH_AT"):
                    from repro.checkpoint.manager import crash_after_item

                    crash_after_item()
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if sender is not None:
            try:
                sender.bye()
            except Exception:  # pragma: no cover - queue gone at teardown
                pass
        if detach:
            runtime.set_recorder(prev_rec)
            set_tracer(prev_tracer)
    return outs


def _call_shard(payload):
    """Pool entry point: build this shard's telemetry lane, run it."""
    shard, fn, pairs, kwargs, capture, fleet_ckpt = payload
    sender = heartbeat = None
    if _WORKER_QUEUE is not None:
        from repro.obs.bus import worker_telemetry

        sender, heartbeat = worker_telemetry(
            shard,
            queue=_WORKER_QUEUE,
            items_total=len(pairs),
            heartbeat_s=_WORKER_HEARTBEAT_S,
        )
    return _run_shard(shard, fn, pairs, kwargs, capture, sender, heartbeat,
                      fleet_ckpt)


def _shard_slices(n_items: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shard bounds, sizes differing by <= 1."""
    base, extra = divmod(n_items, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for k in range(shards):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def parallel_replica_map(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    seed: SeedLike = None,
    processes: int | None = None,
    chunksize: int = 1,
    heartbeat_s: float | None = None,
    fleet_ckpt=None,
    restart_lost: int = 0,
    **kwargs,
) -> list[Any]:
    """Evaluate ``fn(item, seed_seq, **kwargs)`` for each item.

    Each call receives its own spawned ``SeedSequence``.  ``processes``
    defaults to ``min(len(items), cpu_count())``; ``processes=1`` runs
    inline (no pool).  Results preserve input order.  Worker exceptions
    propagate to the caller on both paths; a worker process *killed*
    mid-shard raises :class:`~concurrent.futures.process.BrokenProcessPool`
    after a ``worker_lost`` monitor event lands on the run artifact.

    *fleet_ckpt* (a :class:`repro.checkpoint.manager.FleetCheckpoint`)
    turns on per-shard item-granularity checkpoints, and
    *restart_lost* > 0 additionally restarts lost shards in a fresh
    pool up to that many times: each dead lane's post-checkpoint
    telemetry tail is truncated on the parent recorder, the lane
    replays from its shard checkpoint, and results stay identical to
    an undisturbed run (``worker_lost`` only fires once restarts are
    exhausted).

    *heartbeat_s* overrides the worker heartbeat period (telemetry-bus
    campaigns only); *chunksize* is accepted for backward compatibility
    and ignored — items are split into ``processes`` contiguous shards,
    one telemetry lane each.

    Extra ``**kwargs`` reach every call verbatim — this is how the
    campaign stack threads per-shard execution knobs (e.g. the
    vectorized engine's ``batch`` segment length) through the pool
    without the sharding or checkpoint machinery knowing about them:
    sharding is by replica count only, so a knob that leaves each
    shard's trajectory unchanged leaves the pooled artifact unchanged.
    """
    del chunksize  # sharding replaced chunked Pool.map in PR 7
    items = list(items)
    seeds = spawn_seeds(seed, len(items))
    pairs = list(zip(items, seeds))
    capture = obs.enabled()
    if processes is None:
        processes = min(len(items), mp.cpu_count()) or 1
    inline = processes <= 1 or len(items) <= 1
    shards = 1 if inline else min(processes, len(items))
    from repro.obs import runtime
    from repro.obs.bus import DEFAULT_HEARTBEAT_S

    recorder = runtime.get_recorder() if capture else None
    hb_s = DEFAULT_HEARTBEAT_S if heartbeat_s is None else float(heartbeat_s)
    with obs.span("parallel/map", items=len(items), processes=shards):
        if inline:
            sender = heartbeat = None
            if recorder is not None:
                from repro.obs.bus import worker_telemetry

                sender, heartbeat = worker_telemetry(
                    0, recorder=recorder, items_total=len(items),
                    heartbeat_s=hb_s,
                )
            outs = _run_shard(0, fn, pairs, kwargs, capture, sender, heartbeat,
                              fleet_ckpt)
        else:
            outs = _pooled_map(
                fn, pairs, kwargs, capture, shards, recorder, hb_s,
                fleet_ckpt=fleet_ckpt, restart_lost=restart_lost,
            )
    if capture:
        reg = obs.metrics()
        reg.counter("parallel.replicas").inc(len(items))
        for _, snap in outs:
            if snap:
                reg.merge(snap)
    return [result for result, _ in outs]


def _pooled_map(fn, pairs, kwargs, capture, shards, recorder, heartbeat_s,
                fleet_ckpt=None, restart_lost=0):
    """Run the sharded pool, bus-connected when a recorder is active.

    With *fleet_ckpt* and *restart_lost* > 0, a broken pool does not
    propagate immediately: the lost shards' telemetry lanes are
    truncated back to their committed shard checkpoints and the shards
    re-run in a fresh pool (preloading completed items), up to
    *restart_lost* times.  Only when restarts are exhausted do
    ``worker_lost`` events land and the pool failure raise.
    """
    from repro.obs import runtime
    from repro.obs.bus import TelemetryBus

    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    payloads = [
        (k, fn, pairs[start:stop], kwargs, capture, fleet_ckpt)
        for k, (start, stop) in enumerate(_shard_slices(len(pairs), shards))
    ]
    shard_outs: list[list | None] = [None] * len(payloads)
    pending = list(range(len(payloads)))
    restarts_left = int(restart_lost) if fleet_ckpt is not None else 0
    while pending:
        bus = (
            TelemetryBus(recorder, ctx, heartbeat_s=heartbeat_s).start()
            if recorder is not None
            else None
        )
        lost: set[int] = set()
        broken: BrokenProcessPool | None = None
        try:
            with ProcessPoolExecutor(
                max_workers=len(pending),
                mp_context=ctx,
                initializer=_bus_worker_init,
                initargs=(
                    bus.queue if bus is not None else None,
                    capture,
                    runtime.probe_interval(),
                    heartbeat_s,
                ),
            ) as ex:
                futures = [(k, ex.submit(_call_shard, payloads[k]))
                           for k in pending]
                for k, fut in futures:
                    try:
                        shard_outs[k] = fut.result()
                    except BrokenProcessPool as e:
                        # A killed worker breaks the whole pool; keep
                        # collecting so every dead lane is accounted for.
                        broken = e
                        lost.add(k)
        finally:
            byes: set[int] = set()
            if bus is not None:
                bus.finish(set(pending) - lost)
                byes = bus.byes
            if lost and restarts_left > 0:
                pass  # restarting below; no worker_lost yet
            elif bus is not None:
                # A shard whose bye made it onto the queue finished its
                # work even if the pool broke before its result
                # transferred; only silent lanes are reported lost.
                for k in sorted(lost - byes):
                    recorder.record_monitor(
                        {
                            "monitor": "worker_lost",
                            "series": "parallel/workers",
                            "items": len(payloads[k][2]),
                            "shards": len(payloads),
                        },
                        worker=k,
                    )
        if lost and restarts_left > 0:
            restarts_left -= 1
            counts = fleet_ckpt.lane_counts()
            for k in sorted(lost):
                lane = counts.get(k, {"records": 0, "monitors": 0})
                if recorder is not None:
                    recorder.truncate_lane(
                        k,
                        records=lane["records"],
                        monitors=lane["monitors"],
                    )
            pending = sorted(lost)
            continue
        if broken is not None:
            raise broken
        pending = []
    return [pair for out in shard_outs for pair in (out or [])]
