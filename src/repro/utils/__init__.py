"""Shared substrate utilities.

This subpackage holds the non-domain-specific machinery the reproduction
leans on: reproducible parallel RNG streams (:mod:`repro.utils.rng`), a
Fenwick tree for O(log n) weighted sampling (:mod:`repro.utils.fenwick`),
enumeration of integer partitions / normalized load vectors
(:mod:`repro.utils.partitions`), plain-text result tables
(:mod:`repro.utils.tables`), argument validation helpers
(:mod:`repro.utils.validation`) and a tiny multiprocessing map
(:mod:`repro.utils.parallel`).
"""

from repro.utils.fenwick import FenwickTree
from repro.utils.partitions import (
    iter_partitions,
    num_partitions,
    partition_index,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import Table
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "FenwickTree",
    "Table",
    "as_generator",
    "check_positive_int",
    "check_probability",
    "iter_partitions",
    "num_partitions",
    "partition_index",
    "spawn_generators",
]
