"""Declarative process specifications: one definition, every engine.

The paper's framework (§3.3) treats every dynamic allocation process as
a single abstract shape: a *removal law* (which normalized bin loses a
ball) plus a *scheduling rule* (where the new ball goes) iterated over a
normalized load vector.  A :class:`ProcessSpec` captures exactly that
shape — removal law, placement rule, and a state-space descriptor
(closed Ω_m / open ⋃Ω_k, optional population cap, optional relocation
move) — so the scalar, vectorized and exact engines in this package can
all execute the *same* declaration instead of three parallel
reimplementations.

Removal laws are reified with three access paths, mirroring how the
paper's distributions are consumed across the codebase:

* ``pmf(v)`` — the exact distribution (exact kernels, faithfulness
  checks);
* ``quantile(v, u)`` — inverse-CDF at a uniform (scalar simulators and
  the shared-uniform grand coupling of :mod:`repro.coupling.grand`);
* ``quantile_batch(V, u)`` — the same inversion over an (R, n) matrix
  of replicas at once (the vectorized engine).

:class:`BallRemoval` is 𝒜(v) (Definition 3.2), :class:`BinRemoval` is
ℬ(v) (Definition 3.3), and :class:`WeightedRemoval` is the §7
generalization w(ℓ) — which subsumes both (w(ℓ)=ℓ → 𝒜, w(ℓ)=1[ℓ>0] →
ℬ) but keeps them as dedicated classes so the engines can use their
O(log n) / closed-form fast paths.

A spec also carries a *step shape* (:class:`StepLaw`):

* :class:`SequentialStep` — the paper's §3.3 phase: one removal draw,
  one placement draw (bit-for-bit today's semantics and RNG order);
* :class:`SynchronousStep` — the Repeated Balls-into-Bins shape
  (Becchetti et al.; Los–Sauerwald): every nonempty bin releases one
  ball, and all released balls re-place *in parallel*, each drawing
  i.i.d. from the rule's insertion distribution evaluated on the
  post-release state.  For load-independent rules (uniform, ABKU[d])
  the whole scatter is one multinomial draw, which is what the
  vectorized engine exploits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from repro.balls.distributions import (
    quantile_removal_a,
    quantile_removal_b,
    removal_distribution_a,
    removal_distribution_b,
)
from repro.balls.rules import SchedulingRule
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "RemovalLaw",
    "BallRemoval",
    "BinRemoval",
    "WeightedRemoval",
    "StepLaw",
    "SequentialStep",
    "SynchronousStep",
    "ProcessSpec",
    "scenario_a_spec",
    "scenario_b_spec",
    "custom_removal_spec",
    "open_spec",
    "relocation_spec",
    "rbb_spec",
    "rbb_uniform_spec",
    "rbb_twochoice_spec",
]


# ---------------------------------------------------------------------------
# Step shapes
# ---------------------------------------------------------------------------

class StepLaw(ABC):
    """The *shape* of one step: how removals and placements interleave.

    Step laws are stateless markers with value semantics (two instances
    of the same class are equal), so frozen specs that differ only in
    construction site still hash and compare consistently.
    """

    name: str = "step"

    @property
    @abstractmethod
    def synchronous(self) -> bool:
        """Whether the step releases/places in parallel (RBB shape)."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SequentialStep(StepLaw):
    """The paper's §3.3 phase: one removal draw, then one placement draw.

    This is exactly today's semantics — engines keep their legacy RNG
    draw order bit-for-bit under this shape.
    """

    name = "sequential"

    @property
    def synchronous(self) -> bool:
        return False


class SynchronousStep(StepLaw):
    """Repeated Balls-into-Bins: parallel release + parallel re-placement.

    One step from state v: (1) every nonempty bin releases one ball,
    w = v − 1[v > 0]; (2) the s = #nonempty released balls each draw an
    i.i.d. normalized insertion index from ``rule.insertion_distribution``
    evaluated on the *post-release* state w; (3) the new state is the
    descending re-sort of w plus the scatter counts.

    For load-independent rules the insertion pmf q does not depend on
    w, so the scatter is exactly Multinomial(s, q) — one vectorizable
    draw per step.  This matches uniform RBB (i.i.d. uniform bin
    choices) and the parallel d-choice variant (each ball's normalized
    index is the max of d uniform indices; the engines agree on this
    law exactly, which the parity battery checks against the exact
    kernel).
    """

    name = "synchronous"

    @property
    def synchronous(self) -> bool:
        return True


#: Shared default so every existing call site keeps its sequential shape.
SEQUENTIAL = SequentialStep()
SYNCHRONOUS = SynchronousStep()


# ---------------------------------------------------------------------------
# Removal laws
# ---------------------------------------------------------------------------

class RemovalLaw(ABC):
    """A removal distribution over normalized bin indices.

    Implementations must agree across the three access paths: for any
    state v, ``quantile(v, u)`` must invert the CDF of ``pmf(v)``, and
    ``quantile_batch`` must equal row-wise ``quantile`` (the engine
    parity tests enforce this).  ``batchable`` advertises whether
    ``quantile_batch`` exists — laws that need sequential sampling can
    set it False and stay scalar-only.
    """

    name: str = "removal"
    batchable: bool = True

    @abstractmethod
    def pmf(self, v: np.ndarray) -> np.ndarray:
        """Exact removal pmf over normalized indices 0..n-1."""

    @abstractmethod
    def quantile(self, v: np.ndarray, u: float) -> int:
        """Inverse-CDF of ``pmf(v)`` at u ∈ [0, 1)."""

    def quantile_batch(self, V: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Row-wise ``quantile`` over an (R, n) load matrix at u of shape (R,).

        Every row must admit a removal (positive total weight); the
        engines mask empty rows out before calling.
        """
        raise NotImplementedError(f"{self.name} has no vectorized quantile")

    def quantile_batch_into(
        self, V: np.ndarray, u: np.ndarray, csum: np.ndarray, buf: np.ndarray
    ) -> np.ndarray:
        """Allocation-free ``quantile_batch`` for the batched hot loop.

        *csum* is an (R, n) integer scratch (wide enough to hold a row
        cumsum) and *buf* an (R, n) bool scratch, both owned by the
        caller and reused across steps.  Must return exactly the indices
        of :meth:`quantile_batch` — the differential harness pins the
        batched path to the unbatched one bitwise, so implementations
        may only change *where* intermediates live, never their values.
        The base class falls back to the allocating path.
        """
        return self.quantile_batch(V, u)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BallRemoval(RemovalLaw):
    """𝒜(v): remove a uniformly random ball — Pr[i] = v_i / m (Def 3.2)."""

    name = "ball"

    def pmf(self, v: np.ndarray) -> np.ndarray:
        return removal_distribution_a(v)

    def quantile(self, v: np.ndarray, u: float) -> int:
        return quantile_removal_a(v, u)

    def quantile_batch(self, V: np.ndarray, u: np.ndarray) -> np.ndarray:
        # Ball ⌊u·m⌋ of each row; the bin holding it is the row-wise
        # inverse CDF of the loads (counting comparison on the cumsum).
        m = V.sum(axis=1)
        targets = np.minimum((u * m).astype(np.int64), m - 1)
        csum = np.cumsum(V, axis=1)
        return (csum <= targets[:, None]).sum(axis=1)

    def quantile_batch_into(
        self, V: np.ndarray, u: np.ndarray, csum: np.ndarray, buf: np.ndarray
    ) -> np.ndarray:
        # Same inversion with the cumsum landing in caller scratch; m is
        # read off the cumsum's last column instead of a second O(R·n)
        # sum pass, and the comparison-count #{csum <= target} becomes a
        # per-row binary search on the (ascending) cumsum — exact
        # integer comparisons, so bitwise the quantile_batch indices.
        np.cumsum(V, axis=1, dtype=csum.dtype, out=csum)
        m = csum[:, -1]
        targets = np.minimum((u * m).astype(np.int64), m - 1)
        out = np.empty(len(targets), dtype=np.int64)
        for r in range(len(targets)):
            out[r] = np.searchsorted(csum[r], targets[r], side="right")
        return out


class BinRemoval(RemovalLaw):
    """ℬ(v): remove from a uniform nonempty bin — Pr[i] = 1/s, i < s (Def 3.3)."""

    name = "bin"

    def pmf(self, v: np.ndarray) -> np.ndarray:
        return removal_distribution_b(v)

    def quantile(self, v: np.ndarray, u: float) -> int:
        return quantile_removal_b(v, u)

    def quantile_batch(self, V: np.ndarray, u: np.ndarray) -> np.ndarray:
        # Nonempty bins are exactly indices 0..s-1 in normalized rows.
        s = (V > 0).sum(axis=1)
        return np.minimum((u * s).astype(np.int64), s - 1)

    def quantile_batch_into(
        self, V: np.ndarray, u: np.ndarray, csum: np.ndarray, buf: np.ndarray
    ) -> np.ndarray:
        # Rows are descending, so s = #{> 0} is a per-row binary search
        # on the reversed view — no O(R·n) mask pass, no cumsum.
        n = V.shape[1]
        s = np.empty(V.shape[0], dtype=np.int64)
        for r in range(V.shape[0]):
            s[r] = n - np.searchsorted(V[r, ::-1], 0, side="right")
        return np.minimum((u * s).astype(np.int64), s - 1)


class WeightedRemoval(RemovalLaw):
    """The §7 generalized law: Pr[i] ∝ w(v_i), never removing from empty bins.

    ``weight`` maps a load ℓ ≥ 0 to a non-negative weight (see
    :mod:`repro.balls.custom_removal` for the paper's examples:
    w(ℓ)=ℓ^γ pressure removal, and the 𝒜/ℬ special cases).
    """

    def __init__(self, weight: Callable[[int], float], *, name: str = "weighted"):
        self.weight = weight
        self.name = name

    def pmf(self, v: np.ndarray) -> np.ndarray:
        from repro.balls.custom_removal import removal_pmf_from_weights

        return removal_pmf_from_weights(v, self.weight)

    def quantile(self, v: np.ndarray, u: float) -> int:
        i = int(np.searchsorted(np.cumsum(self.pmf(v)), u, side="right"))
        return min(i, v.shape[0] - 1)

    def quantile_batch(self, V: np.ndarray, u: np.ndarray) -> np.ndarray:
        # Loads are small ints, so evaluate w on the distinct values
        # only and gather — keeps arbitrary Python weight functions off
        # the (R, n) hot path.
        vals, inv = np.unique(V, return_inverse=True)
        wtab = np.array([self.weight(int(x)) for x in vals], dtype=np.float64)
        if (wtab < 0).any():
            raise ValueError("weights must be non-negative")
        wtab[vals == 0] = 0.0
        W = wtab[inv].reshape(V.shape)
        total = W.sum(axis=1)
        if (total <= 0).any():
            raise ValueError("no bin has positive removal weight")
        csum = np.cumsum(W, axis=1)
        idx = (csum <= (u * total)[:, None]).sum(axis=1)
        return np.minimum(idx, V.shape[1] - 1)

    def __repr__(self) -> str:
        return f"WeightedRemoval(name={self.name!r})"


# ---------------------------------------------------------------------------
# Process specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProcessSpec:
    """Declarative description of a dynamic allocation process (§3.3).

    * ``kind='closed'`` — one phase = remove one ball (by ``removal``),
      place one ball (by ``rule``); the ball count is invariant (Ω_m).
    * ``kind='open'`` — the §7 open system: each step a fair coin picks
      a removal attempt (no-op on the empty state) or an insertion
      attempt (no-op at the ``max_balls`` cap, if set); the state space
      is ⋃_k Ω_k.
    * ``p_relocate`` — the §7 relocation extension: after a closed
      phase, with this probability move one ball from the fullest bin
      to a rule-selected target when that strictly improves balance
      (load gap ≥ 2).
    * ``step`` — the step shape: :class:`SequentialStep` (default,
      everything above) or :class:`SynchronousStep` (RBB: every
      nonempty bin releases one ball per step and the released balls
      re-place in parallel by ``rule``; ``removal`` is nominal and
      unused — the release set is determined by the state).

    Specs are frozen (hashable) so engines and registries can treat
    them as values; use :func:`dataclasses.replace` to derive variants.
    """

    name: str
    rule: SchedulingRule
    removal: RemovalLaw
    kind: Literal["closed", "open"] = "closed"
    max_balls: int | None = None
    p_relocate: float = 0.0
    step: StepLaw = SEQUENTIAL

    def __post_init__(self) -> None:
        if self.kind not in ("closed", "open"):
            raise ValueError(f"kind must be 'closed' or 'open', got {self.kind!r}")
        object.__setattr__(
            self, "p_relocate", check_probability("p_relocate", self.p_relocate)
        )
        if self.max_balls is not None:
            check_positive_int("max_balls", self.max_balls)
            if self.kind != "open":
                raise ValueError("max_balls only applies to open specs")
        if self.p_relocate > 0 and self.kind != "closed":
            raise ValueError("relocation only applies to closed specs")
        if not isinstance(self.step, StepLaw):
            raise TypeError(f"step must be a StepLaw, got {self.step!r}")
        if self.step.synchronous:
            if self.kind != "closed":
                raise ValueError("synchronous steps require a closed system")
            if self.p_relocate > 0:
                raise ValueError(
                    "relocation is not defined for synchronous steps"
                )

    def describe(self) -> str:
        """One-line human description (used by the ``repro engines`` CLI)."""
        bits = [f"{self.kind}", f"step={self.step.name}",
                f"removal={self.removal.name}", f"rule={self.rule.name}"]
        if self.step.synchronous:
            # The removal law is nominal under the synchronous shape.
            bits.remove(f"removal={self.removal.name}")
        if self.max_balls is not None:
            bits.append(f"cap={self.max_balls}")
        if self.p_relocate > 0:
            bits.append(f"p_relocate={self.p_relocate}")
        return ", ".join(bits)


# ---------------------------------------------------------------------------
# Spec builders for the paper's named processes
# ---------------------------------------------------------------------------

def scenario_a_spec(rule: SchedulingRule, *, name: str = "scenario_a") -> ProcessSpec:
    """I_A (§4): remove a uniform ball, place by *rule*."""
    return ProcessSpec(name, rule, BallRemoval())


def scenario_b_spec(rule: SchedulingRule, *, name: str = "scenario_b") -> ProcessSpec:
    """I_B (§5): remove from a uniform nonempty bin, place by *rule*."""
    return ProcessSpec(name, rule, BinRemoval())


def custom_removal_spec(
    rule: SchedulingRule,
    weight: Callable[[int], float],
    *,
    name: str = "custom_removal",
) -> ProcessSpec:
    """The §7 generalized-removal process: remove by w(ℓ), place by *rule*."""
    return ProcessSpec(name, rule, WeightedRemoval(weight, name=f"w({name})"))


def open_spec(
    rule: SchedulingRule,
    *,
    removal: Literal["ball", "bin"] = "ball",
    max_balls: int | None = None,
    name: str | None = None,
) -> ProcessSpec:
    """The §7 open system: ½ remove / ½ insert, optionally population-capped."""
    if removal not in ("ball", "bin"):
        raise ValueError(f"removal must be 'ball' or 'bin', got {removal!r}")
    law = BallRemoval() if removal == "ball" else BinRemoval()
    return ProcessSpec(
        name or f"open_{removal}", rule, law, kind="open", max_balls=max_balls
    )


def relocation_spec(
    rule: SchedulingRule,
    *,
    scenario: Literal["a", "b"] = "a",
    p_relocate: float = 0.5,
    name: str = "relocation",
) -> ProcessSpec:
    """The §7 relocation extension over the scenario-A or -B removal law."""
    if scenario not in ("a", "b"):
        raise ValueError(f"scenario must be 'a' or 'b', got {scenario!r}")
    law = BallRemoval() if scenario == "a" else BinRemoval()
    return ProcessSpec(name, rule, law, p_relocate=p_relocate)


def rbb_spec(rule: SchedulingRule, *, name: str = "rbb") -> ProcessSpec:
    """Repeated Balls-into-Bins with an arbitrary placement *rule*.

    The removal slot is filled with :class:`BinRemoval` purely as a
    nominal value — under :class:`SynchronousStep` the release set is
    the nonempty bins, not a sampled law.
    """
    return ProcessSpec(name, rule, BinRemoval(), step=SYNCHRONOUS)


def rbb_uniform_spec(*, name: str = "rbb_uniform") -> ProcessSpec:
    """Uniform RBB (Becchetti et al.): released balls re-place u.a.r."""
    from repro.balls.rules import UniformRule

    return rbb_spec(UniformRule(), name=name)


def rbb_twochoice_spec(*, name: str = "rbb_twochoice") -> ProcessSpec:
    """Parallel two-choice RBB: each released ball takes the better of 2."""
    from repro.balls.rules import ABKURule

    return rbb_spec(ABKURule(2), name=name)
