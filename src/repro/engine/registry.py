"""Spec registry and engine selection.

Central catalogue of the repository's named process specs — one entry
per process in the DESIGN.md inventory — plus the capability matrix
(which engine supports which spec, and why not when it doesn't) that
backs the ``repro engines`` CLI subcommand and the engine-parity tests.

Engine selection by scale: at ``--scale smoke`` experiments stay on the
scalar reference path (deterministic, cheap); at ``--scale paper`` a
replica sweep moves to the vectorized engine whenever the spec
supports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.balls.custom_removal import weight_power
from repro.balls.rules import ABKURule, AdaptiveRule, RandomWalkRule, threshold_chi
from repro.engine.exact import ExactEngine
from repro.engine.scalar import ScalarEngine
from repro.engine.spec import (
    ProcessSpec,
    custom_removal_spec,
    open_spec,
    rbb_spec,
    rbb_twochoice_spec,
    rbb_uniform_spec,
    relocation_spec,
    scenario_a_spec,
    scenario_b_spec,
)
from repro.engine.vectorized import VectorizedEngine

__all__ = [
    "ENGINES",
    "SpecEntry",
    "register_spec",
    "registered_specs",
    "spec_entries",
    "engine_support",
    "batched_kernel",
    "get_engine",
    "engine_for",
]

#: The pluggable engines, in preference order for replica sweeps.
ENGINES = (ScalarEngine, VectorizedEngine, ExactEngine)


@dataclass(frozen=True)
class SpecEntry:
    """A registered spec: a factory (specs hold rule instances, so they
    are built fresh per request) plus a human description."""

    name: str
    build: Callable[[], ProcessSpec]
    description: str = ""


_REGISTRY: dict[str, SpecEntry] = {}


def register_spec(
    name: str,
    build: Callable[[], ProcessSpec],
    *,
    description: str = "",
) -> None:
    """Register a named spec factory (overwrites an existing name)."""
    _REGISTRY[name] = SpecEntry(name, build, description)


def spec_entries() -> dict[str, SpecEntry]:
    """All registered entries, keyed by name (insertion-ordered copy)."""
    return dict(_REGISTRY)


def registered_specs() -> dict[str, ProcessSpec]:
    """Freshly built specs for every registered name."""
    return {name: entry.build() for name, entry in _REGISTRY.items()}


def engine_support(spec: ProcessSpec) -> dict[str, tuple[bool, str]]:
    """Capability matrix row: engine name → (supported, reason)."""
    return {engine.name: engine.supports(spec) for engine in ENGINES}


def batched_kernel(spec: ProcessSpec) -> tuple[bool, str]:
    """Which ``run_batched`` fast path *spec* takes (``repro engines``).

    Returns ``(vectorizable, how)``.  Every vectorizable spec accepts
    ``run_batched`` (the results are bitwise those of ``run``), but the
    kernel differs by step shape: closed/open sequential specs advance
    on one pre-drawn RNG slab with fused ⊕/⊖ passes, while synchronous
    (RBB) specs keep their per-step scatter draw — its size Σ s_r is
    state-dependent, so only the Python dispatch is batched.  For a
    rejected spec *how* is the vectorized engine's reason.
    """
    ok, why = VectorizedEngine.supports(spec)
    if not ok:
        return False, why
    if spec.step.synchronous:
        return True, "per-step scatter (state-dependent draw size)"
    if spec.kind == "closed":
        return True, "fused slab (pre-drawn RNG, fused ⊕/⊖)"
    return True, "open slab (pre-drawn RNG, per-step kernel)"


def get_engine(name: str):
    """Look an engine class up by its ``name`` attribute."""
    for engine in ENGINES:
        if engine.name == name:
            return engine
    raise ValueError(
        f"unknown engine {name!r}; choose from "
        f"{', '.join(e.name for e in ENGINES)}"
    )


def engine_for(spec: ProcessSpec, scale: str, *, replicas: int = 1):
    """Pick the execution engine for *spec* at a scale preset.

    Smoke runs stay on the scalar reference path.  At paper scale a
    multi-replica sweep moves to the vectorized engine when the spec
    supports it; otherwise (ADAP(χ) and friends) scalar remains.

    The chosen engine's ``supports`` verdict is asserted at *every*
    scale — an unsupported spec raises with the engine's rejection
    reason instead of silently running on a path that cannot execute
    it.
    """
    if scale == "paper" and replicas > 1 and VectorizedEngine.supports(spec)[0]:
        return VectorizedEngine
    ok, why = ScalarEngine.supports(spec)
    if not ok:
        raise ValueError(
            f"no engine supports spec {spec.name!r} at scale {scale!r}: {why}"
        )
    return ScalarEngine


# ---------------------------------------------------------------------------
# Default catalogue: the DESIGN.md process inventory as specs
# ---------------------------------------------------------------------------

register_spec(
    "scenario_a",
    lambda: scenario_a_spec(ABKURule(2)),
    description="I_A (§4): remove uniform ball, place ABKU[2]",
)
register_spec(
    "scenario_b",
    lambda: scenario_b_spec(ABKURule(2)),
    description="I_B (§5): remove from uniform nonempty bin, place ABKU[2]",
)
register_spec(
    "scenario_a_adap",
    lambda: scenario_a_spec(
        AdaptiveRule(threshold_chi(1, 3, 2), name="adap[1|3@2]"),
        name="scenario_a_adap",
    ),
    description="I_A with ADAP(χ): adaptive sequential sampling (§2)",
)
register_spec(
    "open_ball",
    lambda: open_spec(ABKURule(2), removal="ball", max_balls=6),
    description="§7 open system, scenario-A removal, capped population",
)
register_spec(
    "open_bin",
    lambda: open_spec(ABKURule(2), removal="bin", max_balls=6),
    description="§7 open system, scenario-B removal, capped population",
)
register_spec(
    "relocation",
    lambda: relocation_spec(ABKURule(2), scenario="a", p_relocate=0.5),
    description="§7 relocation: closed phase + conditional fullest→target move",
)
register_spec(
    "custom_pressure",
    lambda: custom_removal_spec(
        ABKURule(2), weight_power(2.0), name="custom_pressure"
    ),
    description="§7 generalized removal w(ℓ)=ℓ², place ABKU[2]",
)
register_spec(
    "rbb_uniform",
    lambda: rbb_uniform_spec(),
    description="Repeated Balls-into-Bins: synchronous release, uniform re-place",
)
register_spec(
    "rbb_twochoice",
    lambda: rbb_twochoice_spec(),
    description="RBB with parallel two-choice re-placement (ABKU[2])",
)
register_spec(
    "rbb_walk",
    lambda: rbb_spec(RandomWalkRule.cycle(2), name="rbb_walk"),
    description="RBB with Frieze–Petti walk placement: ring C_n, capacity 2",
)
