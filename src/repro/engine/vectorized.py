"""Vectorized execution engine: R replicas advanced per whole-array step.

The scaling experiments run many independent replicas of the same
process.  Rather than looping replicas in Python, this engine keeps an
(R, n) matrix of normalized load rows and advances *all* replicas per
step with whole-array NumPy operations — the "vectorize the loop over
replicas" idiom of the HPC guides.  Per step the work is O(R·n) in fast
vectorized passes, which beats R separate O(log n) Python-level steps
by a wide margin for the R ~ 10²–10⁴ used in experiments.

The Fact 3.2 updates vectorize through counting comparisons: in a
descending row, the *first* index of the value-v run is ``#{entries >
v}`` and the *last* is ``#{entries ≥ v} − 1``.

What vectorizes — and what cannot:

* **Removal** — every :class:`~repro.engine.spec.RemovalLaw` with a
  ``quantile_batch`` (ball 𝒜, nonempty-bin ℬ, and the §7 weighted
  w(ℓ) laws all have one), so scenario B and custom-removal variants
  now run batched, not just ABKU-on-A.
* **Insertion** — only rules whose insertion index is an
  *inverse-transform* draw independent of the loads (ABKU[d]:
  ``floor(n·u^{1/d})``).  ADAP(χ) samples sequentially with a
  state-dependent stopping rule, so it is rejected by
  :meth:`VectorizedEngine.supports` and stays on the scalar path.
* **Relocation / open steps** — masked whole-array updates: rows whose
  coin or load-gap condition fails are simply excluded from the fancy-
  indexed write.  A decremented fullest bin still exceeds any valid
  relocation target (gap ≥ 2), so the two Fact 3.2 edits commute
  row-wise.
* **Synchronous (RBB) steps** — the whole fleet advances with *one*
  inverse-transform scatter per step: a single ``rng.random(Σ s_r)``
  draw over every released ball in the fleet, mapped through the rule's
  quantile and bin-counted per replica (equal in law to per-row
  ``Multinomial(s_r, q)``), and the (R, n) matrix is released,
  scattered and re-sorted in whole-array passes — no per-ball Python
  loop.  Requires a load-independent insertion law (same eligibility
  as the inverse-transform insertion path).

Cross-validated against the scalar engine distributionally (KS tests in
the engine-parity suite); replicas consume randomness differently from
scalar runs, so trajectories are not bit-identical by design.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro import obs
from repro.balls.load_vector import LoadVector
from repro.engine.spec import ProcessSpec
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["VectorizedProcess", "VectorizedEngine"]


def _counts_desc(V: np.ndarray, vals: np.ndarray, side: str) -> np.ndarray:
    """Per-row ``#{j : V[r, j] >= vals[r]}`` (``'left'``) or ``> `` (``'right'``).

    Rows of *V* are descending (the engine invariant), so each count is
    a binary search on the reversed-ascending view instead of an O(n)
    comparison scan: for ascending ``a``, ``searchsorted(a, x, 'left')``
    is ``#{a < x}`` and ``'right'`` is ``#{a <= x}`` — the complements
    are exactly the Fact 3.2 run-boundary counts.  Integer comparisons,
    so the result is bitwise identical to the scan it replaces.
    """
    n = V.shape[1]
    out = np.empty(V.shape[0], dtype=np.int64)
    for r in range(V.shape[0]):
        out[r] = n - np.searchsorted(V[r, ::-1], vals[r], side=side)
    return out


class VectorizedProcess:
    """R independent replicas of a spec, stepped as one (R, n) matrix."""

    def __init__(
        self,
        spec: ProcessSpec,
        start: Union[LoadVector, np.ndarray, list],
        replicas: int,
        *,
        seed: SeedLike = None,
    ):
        ok, why = VectorizedEngine.supports(spec)
        if not ok:
            raise TypeError(f"spec {spec.name!r} is not vectorizable: {why}")
        replicas = check_positive_int("replicas", replicas)
        if not isinstance(start, LoadVector):
            start = LoadVector(start)
        self.spec = spec
        self.rule = spec.rule
        self._law = spec.removal
        self._rng = as_generator(seed)
        self._V = np.tile(start.loads, (replicas, 1)).astype(np.int64)
        self._m = int(start.m)
        if spec.kind == "closed" and self._m < 1:
            raise ValueError("need at least one ball")
        self._R = replicas
        self._n = start.n
        self._rows = np.arange(replicas)
        self._t = 0
        self.relocations = 0
        # Synchronous specs scatter against a fixed insertion pmf
        # (supports() guarantees the rule is load-independent).
        self._q: np.ndarray | None = None
        if spec.step.synchronous:
            self._q = spec.rule.insertion_distribution(
                np.zeros(self._n, dtype=np.int64)
            )

    # -- state access ---------------------------------------------------------

    @property
    def replicas(self) -> int:
        """Number of replicas R."""
        return self._R

    @property
    def n(self) -> int:
        """Bins per replica."""
        return self._n

    @property
    def m(self) -> int:
        """Balls per replica (constant for closed specs; -1 for open)."""
        return self._m if self.spec.kind == "closed" else -1

    @property
    def t(self) -> int:
        """Phases executed."""
        return self._t

    @property
    def loads(self) -> np.ndarray:
        """The live (R, n) descending load matrix (read-only use)."""
        return self._V

    def ball_counts(self) -> np.ndarray:
        """Per-replica ball count (varies for open specs)."""
        return self._V.sum(axis=1)

    def max_loads(self) -> np.ndarray:
        """Per-replica max load (column 0)."""
        return self._V[:, 0].copy()

    def tail(self, levels: int) -> np.ndarray:
        """Mean tail profile s_i (i = 0..levels) pooled over replicas."""
        out = np.empty(levels + 1)
        for i in range(levels + 1):
            out[i] = float((self._V >= i).mean())
        return out

    # -- vectorized Fact 3.2 primitives ---------------------------------------

    def _decrement(self, rows: np.ndarray, idx: np.ndarray) -> None:
        """Row-wise v ⊖ e_idx: −1 at the last index of each value-run.

        The whole-fleet case (rows is the identity) works on ``_V``
        in place; a fancy-indexed ``_V[rows]`` there would copy the full
        (R, n) matrix per call and dominate the step cost.
        """
        if rows is self._rows:
            V = self._V
            vals = V[rows, idx]
            pos = (V >= vals[:, None]).sum(axis=1) - 1
            V[rows, pos] -= 1
            return
        sub = self._V[rows]
        vals = sub[np.arange(rows.shape[0]), idx]
        pos = (sub >= vals[:, None]).sum(axis=1) - 1
        self._V[rows, pos] -= 1

    def _increment(self, rows: np.ndarray, idx: np.ndarray) -> None:
        """Row-wise v ⊕ e_idx: +1 at the first index of each value-run."""
        if rows is self._rows:
            V = self._V
            vals = V[rows, idx]
            pos = (V > vals[:, None]).sum(axis=1)
            V[rows, pos] += 1
            return
        sub = self._V[rows]
        vals = sub[np.arange(rows.shape[0]), idx]
        pos = (sub > vals[:, None]).sum(axis=1)
        self._V[rows, pos] += 1

    def _insertion_indices(self, u: np.ndarray) -> np.ndarray:
        """Inverse-transform insertion indices (load-independent rules only)."""
        return self.rule.insertion_quantile_batch(self._n, u)

    # -- stepping ---------------------------------------------------------------

    def step(self) -> None:
        """Advance every replica by one phase."""
        if self._q is not None:
            self._step_synchronous()
        elif self.spec.kind == "closed":
            self._step_closed()
        else:
            self._step_open()
        self._t += 1

    def _step_synchronous(self) -> None:
        """One RBB step for the whole fleet: release, scatter, re-sort.

        Each row releases one ball from each of its s_r nonempty bins
        (rows stay descending after the masked decrement).  All released
        balls of all replicas then re-place through one inverse-transform
        scatter: a single ``rng.random(Σ s_r)`` draw mapped through the
        rule's quantile, bin-counted per replica — equivalent in law to
        per-row ``Multinomial(s_r, q)`` but one RNG call and one
        ``bincount`` for the entire fleet, which is what buys the
        vectorized path its headroom over the scalar loop
        (``benchmarks/bench_e16_rbb.py``).
        """
        V = self._V
        nonempty = V > 0
        s = nonempty.sum(axis=1)
        np.subtract(V, 1, out=V, where=nonempty)
        total = int(s.sum())
        if total > 0:
            idx = self._insertion_indices(self._rng.random(total))
            flat = np.repeat(self._rows, s) * self._n + idx
            V += np.bincount(flat, minlength=self._R * self._n).reshape(
                self._R, self._n
            )
        V[:] = -np.sort(-V, axis=1)

    def _step_closed(self) -> None:
        rng = self._rng
        rows = self._rows
        # Remove: every law batches through its shared-quantile inversion.
        rm_idx = self._law.quantile_batch(self._V, rng.random(self._R))
        self._decrement(rows, rm_idx)
        # Place: inverse-transform insertion.
        self._increment(rows, self._insertion_indices(rng.random(self._R)))
        # Optional relocation: fullest bin → rule-selected target, only
        # in rows that pass the coin and the gap-≥-2 condition.
        p = self.spec.p_relocate
        if p > 0:
            coin = rng.random(self._R) < p
            target = self._insertion_indices(rng.random(self._R))
            gap_ok = (self._V[rows, 0] - self._V[rows, target]) >= 2
            sel = np.nonzero(coin & gap_ok)[0]
            if sel.size:
                self._decrement(sel, np.zeros(sel.size, dtype=np.int64))
                self._increment(sel, target[sel])
                self.relocations += int(sel.size)

    def _step_open(self, u: np.ndarray | None = None) -> None:
        # Fair coin per replica; removal on the empty state and
        # insertion at the cap are row-wise no-ops (§7 semantics).
        # *u* is an optional pre-drawn (3, R) uniform slab — the batched
        # path draws the whole segment's stream in one RNG call, which
        # is bitwise identical to the three sequential draws below.
        if u is None:
            rng = self._rng
            coin = rng.random(self._R) < 0.5
            u_rm = rng.random(self._R)
            u_in = rng.random(self._R)
        else:
            coin = u[0] < 0.5
            u_rm = u[1]
            u_in = u[2]
        counts = self._V.sum(axis=1)
        rm_rows = np.nonzero(coin & (counts > 0))[0]
        if rm_rows.size:
            rm_idx = self._law.quantile_batch(self._V[rm_rows], u_rm[rm_rows])
            self._decrement(rm_rows, rm_idx)
        ins_mask = ~coin
        if self.spec.max_balls is not None:
            ins_mask &= counts < self.spec.max_balls
        ins_rows = np.nonzero(ins_mask)[0]
        if ins_rows.size:
            idx = self._insertion_indices(u_in[ins_rows])
            self._increment(ins_rows, idx)

    # -- batched multi-step kernels --------------------------------------------

    def _ensure_batch_ready(self) -> None:
        """One-time setup for the batched fast path.

        Narrows the load matrix to int32 when the ball-count bound
        proves every load (and every row cumsum) fits — halving the
        memory traffic of the comparison passes that dominate at paper
        scale — and allocates the per-fleet scratch buffers the fused
        kernels write into, so the hot loop allocates no (R, n)
        intermediates at all.  Loads are identical integers in either
        width, so downstream arithmetic (always at least int64/float64)
        is value-identical; :meth:`state_dict` re-canonicalizes to
        int64, keeping checkpoints interchangeable with the unbatched
        path.
        """
        if getattr(self, "_batch_ready", False):
            return
        if self.spec.kind == "closed":
            bound = self._m
        else:
            bound = self.spec.max_balls  # None = unbounded: stay int64
        if bound is not None and bound < np.iinfo(np.int32).max:
            self._V = np.ascontiguousarray(self._V, dtype=np.int32)
        self._csum = np.empty((self._R, self._n), dtype=self._V.dtype)
        self._bool_buf = np.empty((self._R, self._n), dtype=bool)
        self._batch_ready = True

    def _advance(self, T: int, hist: np.ndarray | None = None) -> None:
        """Advance the fleet T phases with no per-step Python dispatch.

        Bitwise identical to T calls of :meth:`step`: the sequential
        shapes pre-draw the segment's whole uniform stream in one RNG
        call (row-for-row the same doubles the per-step draws produce)
        and run the fused kernels; the synchronous shape keeps its
        per-step draw (the scatter size Σ s_r is state-dependent) but
        still skips the dispatch tower.  When *hist* is given (shape
        (T, R)), row i receives the per-replica max load after phase i
        — what the batched ``recovery_times`` scans for hitting times.
        """
        if self._q is not None:
            for i in range(T):
                self._step_synchronous()
                self._t += 1
                if hist is not None:
                    hist[i] = self._V[:, 0]
        elif self.spec.kind == "closed":
            self._advance_closed(T, hist)
        else:
            self._advance_open(T, hist)

    def _advance_closed(self, T: int, hist: np.ndarray | None = None) -> None:
        """T fused closed phases: one slab draw, zero (R, n) allocations.

        Per step the removal inversion lands in the ``_csum``/
        ``_bool_buf`` scratch (:meth:`RemovalLaw.quantile_batch_into`)
        and both Fact 3.2 counting comparisons exploit the descending
        row invariant: ``#{≥ x}`` / ``#{> x}`` are per-row binary
        searches (:func:`_counts_desc`), not O(n) scans — together with
        dropping the unbatched step's five fresh (R, n) intermediates,
        this is where the batched throughput comes from.
        """
        p = self.spec.p_relocate
        k = 4 if p > 0 else 2
        U = self._rng.random((T, k, self._R))
        V = self._V
        rows = self._rows
        law = self._law
        csum = self._csum
        buf = self._bool_buf
        n = self._n
        rule = self.rule
        for i in range(T):
            u = U[i]
            rm = law.quantile_batch_into(V, u[0], csum, buf)
            vals = V[rows, rm]
            pos = _counts_desc(V, vals, "left")  # #{>= val}
            pos -= 1
            V[rows, pos] -= 1
            ins = rule.insertion_quantile_batch(n, u[1])
            vals = V[rows, ins]
            pos = _counts_desc(V, vals, "right")  # #{> val}
            V[rows, pos] += 1
            if p > 0:
                coin = u[2] < p
                target = rule.insertion_quantile_batch(n, u[3])
                gap_ok = (V[rows, 0] - V[rows, target]) >= 2
                sel = np.nonzero(coin & gap_ok)[0]
                if sel.size:
                    self._decrement(sel, np.zeros(sel.size, dtype=np.int64))
                    self._increment(sel, target[sel])
                    self.relocations += int(sel.size)
            self._t += 1
            if hist is not None:
                hist[i] = V[:, 0]

    def _advance_open(self, T: int, hist: np.ndarray | None = None) -> None:
        """T open phases on one pre-drawn (T, 3, R) uniform slab."""
        U = self._rng.random((T, 3, self._R))
        for i in range(T):
            self._step_open(U[i])
            self._t += 1
            if hist is not None:
                hist[i] = self._V[:, 0]

    def _obs_account(self, steps: int) -> None:
        """Bulk-count *steps* fleet phases (only called when obs is enabled)."""
        reg = obs.metrics()
        reg.counter("batch.steps").inc(steps)
        reg.counter("batch.replica_phases").inc(steps * self._R)

    def _get_probe(self, target_max_load: int | None = None):
        """Lazily built fleet probe (observed runs with probes on only).

        With a *target_max_load* (the ``recovery_times`` campaign) the
        probe carries a whole-fleet recovery monitor at that target;
        plain ``run()`` sweeps use the default Theorem 1 envelope for
        closed specs and no monitor for open ones (no fixed m).
        """
        probe = getattr(self, "_fleet_probe", None)
        if probe is None:
            from repro.obs.probes import (
                FleetProbe,
                ThresholdMonitor,
                max_load_recovery_monitor,
            )

            series = f"batch/{self.spec.name}"
            monitors: tuple = ()
            if target_max_load is not None:
                from repro.coupling.recovery import theorem1_bound

                bound = theorem1_bound(self._m) if self._m >= 2 else None
                monitors = (ThresholdMonitor(
                    "max_load_recovery", series, target_max_load,
                    bound_step=bound,
                    extra={"n": self._n, "m": self._m, "replicas": self._R},
                ),)
            elif self.spec.kind == "closed":
                monitors = (max_load_recovery_monitor(series, self._n, self._m),)
            probe = FleetProbe(series, monitors=monitors)
            self._fleet_probe = probe
        return probe

    # -- checkpoint/resume -----------------------------------------------------

    def state_dict(self) -> dict:
        """Full fleet state for checkpoint/resume.

        The (R, n) load matrix, the RNG's ``bit_generator.state``, the
        step count, the relocation counter, and — when the lazily built
        fleet probe exists — its estimator/monitor state.
        """
        state: dict = {
            # Canonical int64 regardless of the live width, so batched
            # and unbatched runs write interchangeable checkpoints.
            "V": self._V.astype(np.int64, copy=True),
            "rng": self._rng.bit_generator.state,
            "t": self._t,
            "relocations": self.relocations,
        }
        probe = getattr(self, "_fleet_probe", None)
        if probe is not None:
            state["probe"] = probe.state_dict()
        return state

    def load_state(self, state: dict, *, probe_target: int | None = None) -> None:
        """Restore a :meth:`state_dict` snapshot onto this fleet.

        The fleet must have been constructed with the same (R, n) shape.
        *probe_target* mirrors the ``recovery_times`` target so the
        rebuilt probe carries the same whole-fleet monitor layout the
        checkpointed one had (monitor envelopes then restore exactly
        from the snapshot).
        """
        V = np.asarray(state["V"], dtype=np.int64)
        if V.shape != self._V.shape:
            raise ValueError(
                f"checkpoint fleet shape {V.shape} != process shape {self._V.shape}"
            )
        self._V[:] = V
        self._rng.bit_generator.state = state["rng"]
        self._t = int(state["t"])
        self.relocations = int(state.get("relocations", 0))
        if "probe" in state:
            self._get_probe(probe_target).load_state(state["probe"])

    def run(self, steps: int) -> "VectorizedProcess":
        """Advance all replicas *steps* phases; returns self."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if not obs.enabled():
            for _ in range(steps):
                self.step()
            return self
        with obs.span("batch/run", steps=steps, replicas=self._R,
                      spec=self.spec.name):
            every = obs.probe_interval()
            if every > 0:
                probe = self._get_probe()
                for _ in range(steps):
                    self.step()
                    if self._t % every == 0:
                        probe.observe(self._t, self._V)
            else:
                for _ in range(steps):
                    self.step()
        self._obs_account(steps)
        return self

    def run_batched(self, steps: int, *, batch: int = 128) -> "VectorizedProcess":
        """Advance all replicas *steps* phases, *batch* per Python call.

        The fast path of the raw-speed roadmap item: identical fleet
        trajectory to :meth:`run` — same RNG stream, same probe
        emissions — but the per-step Python dispatch collapses into one
        :meth:`_advance` call per segment, with the segment's uniforms
        pre-drawn in a single RNG call and the ⊕/⊖ passes fused into
        reusable scratch (no (R, n) intermediates).  Segments are cut at
        probe-decimation boundaries (:func:`repro.obs.probes.probe_cut`)
        so observed runs emit the exact decimated sequence the unbatched
        loop does.  The differential harness (``tests/test_engine_fuzz``)
        pins ``run_batched`` to ``run`` bitwise per replica.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        batch = check_positive_int("batch", batch)
        self._ensure_batch_ready()
        if not obs.enabled():
            left = steps
            while left > 0:
                T = min(batch, left)
                self._advance(T)
                left -= T
            return self
        from repro.obs.probes import probe_cut

        with obs.span("batch/run_batched", steps=steps, replicas=self._R,
                      spec=self.spec.name, batch=batch):
            every = obs.probe_interval()
            probe = self._get_probe() if every > 0 else None
            end = self._t + steps
            while self._t < end:
                cut = probe_cut(self._t, min(self._t + batch, end), every)
                self._advance(cut - self._t)
                if probe is not None and self._t % every == 0:
                    probe.observe(self._t, self._V)
        self._obs_account(steps)
        return self

    def recovery_times(
        self,
        target_max_load: int,
        max_steps: int,
        *,
        checkpointer=None,
        resume: dict | None = None,
        batch: int = 1,
    ) -> np.ndarray:
        """Per-replica first time max load ≤ target (−1 where cap hit).

        Replicas that have recovered keep running (the matrix advances
        as a whole); only their hitting times are frozen.  Under
        observability, the recovered fraction and fleet-mean max load
        are recorded at power-of-two checkpoints (series
        ``batch/recovered_fraction``, ``batch/max_load_mean``).

        *checkpointer* (duck-typed: ``maybe_save(step, payload_fn)``)
        is offered a snapshot after each step's emissions; the payload's
        ``"loop"`` entry plus :meth:`state_dict` is exactly what a later
        call must pass back as *resume* (after :meth:`load_state`) to
        continue the identical trajectory.  Metrics stay deterministic
        because this loop accounts once at the end with the absolute
        ``executed`` count.

        *batch* > 1 routes through the batched kernels: the fleet
        advances in segments cut at every probe and ``save_every``
        boundary, and the per-step hitting-time scan runs over the
        segment's max-load history — artifact-for-artifact identical
        to ``batch=1`` (same ``times``, same ``timeseries.jsonl``
        bytes, same committed checkpoints).  The one visible
        difference is crash granularity: save *opportunities* (where
        ``REPRO_CRASH_AT=step:K`` may fire) exist only at segment
        boundaries, so an injected kill lands at the first boundary
        ≥ K instead of exactly K.  After whole-fleet recovery
        mid-segment the matrix and RNG sit a few phases past the
        hitting step; that overshoot is unobservable — no probe,
        record or checkpoint is emitted past it.
        """
        observing = obs.enabled()
        every = obs.probe_interval() if observing else 0
        probe = self._get_probe(target_max_load) if every > 0 else None
        if resume is not None:
            times = np.asarray(resume["times"], dtype=np.int64).copy()
            done = np.asarray(resume["done"], dtype=bool).copy()
            executed = int(resume["executed"])
            k0 = int(resume["k"])
        else:
            times = np.full(self._R, -1, dtype=np.int64)
            done = self._V[:, 0] <= target_max_load
            times[done] = 0
            executed = 0
            k0 = 0
        if batch > 1:
            return self._recovery_times_batched(
                target_max_load, max_steps, batch, times=times, done=done,
                executed=executed, k0=k0, observing=observing, every=every,
                probe=probe, checkpointer=checkpointer,
            )
        for k in range(k0 + 1, max_steps + 1):
            if done.all():
                break
            self.step()
            executed = k
            newly = (~done) & (self._V[:, 0] <= target_max_load)
            times[newly] = k
            done |= newly
            if probe is not None and k % every == 0:
                probe.observe(self._t, self._V)
            if observing and (k & (k - 1)) == 0:
                obs.record_sample("batch/recovered_fraction", k, float(done.mean()))
                obs.record_sample(
                    "batch/max_load_mean", k, float(self._V[:, 0].mean())
                )
            if checkpointer is not None:
                checkpointer.maybe_save(
                    k,
                    lambda: {
                        "engine": self.state_dict(),
                        "loop": {
                            "k": k,
                            "executed": executed,
                            "times": times.copy(),
                            "done": done.copy(),
                        },
                    },
                )
        if observing:
            self._obs_account(executed)
            obs.record_sample(
                "batch/recovered_fraction", executed, float(done.mean())
            )
        return times

    def _recovery_times_batched(
        self,
        target_max_load: int,
        max_steps: int,
        batch: int,
        *,
        times: np.ndarray,
        done: np.ndarray,
        executed: int,
        k0: int,
        observing: bool,
        every: int,
        probe,
        checkpointer,
    ) -> np.ndarray:
        """The ``batch > 1`` body of :meth:`recovery_times`.

        Segment ends are the only steps where the full matrix is
        needed (probe snapshots, checkpoint payloads), so segments are
        cut there; everything per-step — hitting times, power-of-two
        records — replays from the (T, R) max-load history, in the
        unbatched loop's exact emission order.
        """
        self._ensure_batch_ready()
        save_every = (
            int(getattr(checkpointer, "save_every", 0) or 0)
            if checkpointer is not None else 0
        )
        hist = np.empty((batch, self._R), dtype=self._V.dtype)
        k = k0
        while k < max_steps and not done.all():
            end = min(k + batch, max_steps)
            if every > 0:
                end = min(end, k + every - k % every)
            if save_every > 0:
                end = min(end, k + save_every - k % save_every)
            T = end - k
            self._advance(T, hist=hist[:T])
            completed_at = None
            for i in range(T):
                kk = k + i + 1
                newly = (~done) & (hist[i] <= target_max_load)
                if newly.any():
                    times[newly] = kk
                    done |= newly
                if probe is not None and kk % every == 0:
                    # Only the segment end can be a probe boundary (by
                    # the cut above), where the live matrix *is* the
                    # step-kk state.
                    probe.observe(self._t, self._V)
                if observing and (kk & (kk - 1)) == 0:
                    obs.record_sample(
                        "batch/recovered_fraction", kk, float(done.mean())
                    )
                    obs.record_sample(
                        "batch/max_load_mean", kk, float(hist[i].mean())
                    )
                if done.all():
                    completed_at = kk
                    break
            executed = end if completed_at is None else completed_at
            k = end
            if checkpointer is not None and (
                completed_at is None or completed_at == end
            ):
                # Mid-segment completion skips the boundary offer: the
                # unbatched loop never reaches it either, and the live
                # state past the hitting step must not be snapshotted.
                snap = executed
                checkpointer.maybe_save(
                    snap,
                    lambda: {
                        "engine": self.state_dict(),
                        "loop": {
                            "k": snap,
                            "executed": snap,
                            "times": times.copy(),
                            "done": done.copy(),
                        },
                    },
                )
            if completed_at is not None:
                break
        if observing:
            self._obs_account(executed)
            obs.record_sample(
                "batch/recovered_fraction", executed, float(done.mean())
            )
        return times

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(spec={self.spec.name!r}, R={self._R}, "
            f"n={self._n}, m={self._m}, t={self._t})"
        )


class VectorizedEngine:
    """Whole-array engine for specs with inverse-transform insertion laws."""

    name = "vectorized"

    @staticmethod
    def supports(spec: ProcessSpec) -> tuple[bool, str]:
        """A spec vectorizes iff its rule's insertion index is a single
        inverse-transform draw and its removal law batches.  Synchronous
        specs only need the rule half (the release set is state-driven,
        so the removal law is never sampled)."""
        if getattr(spec.rule, "insertion_quantile_batch", None) is None:
            return False, (
                f"rule {spec.rule.name!r} needs sequential sampling "
                "(no load-independent inverse-transform insertion law)"
            )
        if spec.step.synchronous:
            return True, "whole-fleet inverse-transform scatter per step"
        if not spec.removal.batchable:
            return False, f"removal law {spec.removal.name!r} has no vectorized quantile"
        return True, "whole-array (R, n) stepper"

    @staticmethod
    def make(
        spec: ProcessSpec,
        start: Union[LoadVector, np.ndarray, list],
        replicas: int,
        *,
        seed: SeedLike = None,
    ) -> VectorizedProcess:
        """Instantiate the (R, n) batch simulator for *spec*."""
        return VectorizedProcess(spec, start, replicas, seed=seed)

    @staticmethod
    def sample_transitions(
        spec: ProcessSpec,
        state: Union[LoadVector, np.ndarray, list],
        draws: int,
        *,
        steps: int = 1,
        seed: SeedLike = None,
    ) -> list[tuple[int, ...]]:
        """Statistical-acceptance hook: *draws* i.i.d. end states.

        Runs *draws* as independent replicas of one batch process for
        *steps* phases and reads the per-replica end rows.  The
        chi-square battery of :mod:`repro.verify` compares these
        against :meth:`ExactEngine.transition_row`.
        """
        proc = VectorizedProcess(spec, state, draws, seed=seed)
        proc.run(steps)
        return [tuple(int(x) for x in row) for row in proc.loads]
