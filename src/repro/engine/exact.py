"""Exact execution engine: dense kernels over enumerated partitions.

For small (n, m) every spec induces a finite Markov chain whose dense
transition matrix we can build exactly — the ground truth the paper's
bounds and the simulators are checked against (experiments E9/E15).
This engine derives that matrix *from the spec alone*:

* **closed specs** — states are Ω_m (partitions of m into ≤ n parts);
  one phase composes the removal pmf with the rule's exact insertion
  pmf on the intermediate state.  A relocating spec additionally mixes
  each phase outcome with the conditional relocation move (fullest →
  rule-target when the gap is ≥ 2), weighting by ``p_relocate`` — a
  capability the per-process kernel constructors never had.
* **open specs** — states are ⋃_{k ≤ max_balls} Ω_k; a fair coin picks
  the removal half-step (no-op when empty) or the insertion half-step
  (no-op at the cap).  Any removal law works, not just 𝒜/ℬ.
* **synchronous (RBB) specs** — states are Ω_m; one step enumerates the
  weak compositions of the release count s over the n bins, weighting
  each by its multinomial mass under the rule's insertion pmf on the
  post-release state.

The legacy constructors (:func:`repro.markov.exact.scenario_a_kernel`
and friends) are now thin wrappers over this engine; the parity suite
pins the matrices equal.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro import obs
from repro.balls.load_vector import ominus, oplus
from repro.engine.spec import ProcessSpec
from repro.markov.chain import FiniteMarkovChain
from repro.utils.partitions import all_partitions
from repro.utils.validation import check_positive_int

__all__ = ["ExactEngine"]


def _phase_distribution(
    spec: ProcessSpec,
    v: np.ndarray,
    index: dict,
    out_row: np.ndarray,
) -> None:
    """Accumulate the one-phase distribution from state *v* into *out_row*."""
    n = v.shape[0]
    pmf = spec.removal.pmf(v)
    for i in range(n):
        p_rm = float(pmf[i])
        if p_rm <= 0.0:
            continue
        vstar = ominus(v, i)
        q = spec.rule.insertion_distribution(vstar)
        for j in range(n):
            p_in = p_rm * float(q[j])
            if p_in <= 0.0:
                continue
            v0 = oplus(vstar, j)
            if spec.p_relocate > 0.0:
                _relocation_mix(spec, v0, index, out_row, p_in)
            else:
                out_row[index[tuple(int(x) for x in v0)]] += p_in


def _relocation_mix(
    spec: ProcessSpec,
    v0: np.ndarray,
    index: dict,
    out_row: np.ndarray,
    mass: float,
) -> None:
    """Mix the post-phase state with the conditional relocation move.

    With probability 1−p the phase outcome stands; with probability p a
    rule-target t is drawn on v0 and one ball moves fullest → t iff
    v0[0] − v0[t] ≥ 2 (otherwise the move is a no-op).
    """
    p = spec.p_relocate
    k0 = index[tuple(int(x) for x in v0)]
    out_row[k0] += mass * (1.0 - p)
    q = spec.rule.insertion_distribution(v0)
    for t in range(v0.shape[0]):
        pt = float(q[t])
        if pt <= 0.0:
            continue
        if v0[0] - v0[t] >= 2:
            moved = oplus(ominus(v0, 0), t)
            out_row[index[tuple(int(x) for x in moved)]] += mass * p * pt
        else:
            out_row[k0] += mass * p * pt


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All weak compositions of *total* into *parts* ordered parts."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def _synchronous_phase_distribution(
    spec: ProcessSpec,
    v: np.ndarray,
    index: dict,
    out_row: np.ndarray,
) -> None:
    """Accumulate the one-step RBB distribution from state *v* into *out_row*.

    One synchronous step releases one ball from each of the s nonempty
    bins and scatters the s released balls i.i.d. by the rule's
    insertion pmf q on the post-release state w, so the landing counts
    are Multinomial(s, q): each weak composition c of s contributes
    mass  s!/(∏ c_i!) · ∏ q_i^{c_i}  to the sorted state w + c.
    """
    n = v.shape[0]
    w = v.copy()
    s = int(np.count_nonzero(w))
    w[w > 0] -= 1
    if s == 0:
        out_row[index[tuple(int(x) for x in w)]] += 1.0
        return
    q = spec.rule.insertion_distribution(w)
    s_fact = float(math.factorial(s))
    for c in _compositions(s, n):
        p = s_fact
        for ci, qi in zip(c, q):
            if ci:
                if qi <= 0.0:
                    p = 0.0
                    break
                p *= float(qi) ** ci / math.factorial(ci)
        if p <= 0.0:
            continue
        u = np.sort(w + np.asarray(c, dtype=np.int64))[::-1]
        out_row[index[tuple(int(x) for x in u)]] += p


def _open_phase_distribution(
    spec: ProcessSpec,
    v: np.ndarray,
    cap: int,
    index: dict,
    out_row: np.ndarray,
) -> None:
    """Accumulate the one-step open-system distribution from *v* into *out_row*."""
    n = v.shape[0]
    m = int(v.sum())
    # Removal half-step (no-op when empty).
    if m == 0:
        out_row[index[tuple(int(x) for x in v)]] += 0.5
    else:
        pmf = spec.removal.pmf(v)
        for i in range(n):
            p_rm = float(pmf[i])
            if p_rm <= 0.0:
                continue
            v_rm = ominus(v, i)
            out_row[index[tuple(int(x) for x in v_rm)]] += 0.5 * p_rm
    # Insertion half-step (no-op at the cap).
    if m >= cap:
        out_row[index[tuple(int(x) for x in v)]] += 0.5
    else:
        q = spec.rule.insertion_distribution(v)
        for j in range(n):
            p_in = float(q[j])
            if p_in <= 0.0:
                continue
            v_in = oplus(v, j)
            out_row[index[tuple(int(x) for x in v_in)]] += 0.5 * p_in


class ExactEngine:
    """Dense-kernel engine over enumerated partition state spaces."""

    name = "exact"

    @staticmethod
    def supports(spec: ProcessSpec) -> tuple[bool, str]:
        """Any spec with a finite state space (open specs need a cap)."""
        if spec.kind == "open" and spec.max_balls is None:
            return False, "unbounded open system: set max_balls for a finite ⋃Ω_k"
        return True, "dense kernel on enumerated partitions"

    @staticmethod
    def state_space(spec: ProcessSpec, n: int, m: int | None = None) -> list[tuple[int, ...]]:
        """The enumerated state space of *spec* on n bins (kernel row order).

        Closed specs: Ω_m for the given ball count *m*.  Open specs:
        ⋃_{k ≤ max_balls} Ω_k (the cap comes from the spec; *m* is
        ignored).
        """
        ok, why = ExactEngine.supports(spec)
        if not ok:
            raise ValueError(f"spec {spec.name!r} has no finite state space: {why}")
        n = check_positive_int("n", n)
        if spec.kind == "open":
            states: list[tuple[int, ...]] = []
            for k in range(int(spec.max_balls) + 1):
                states.extend(all_partitions(k, n))
            return states
        if m is None:
            raise ValueError("closed specs need the ball count m")
        return all_partitions(check_positive_int("m", m), n)

    @staticmethod
    def transition_row(
        spec: ProcessSpec, v: np.ndarray | list | tuple
    ) -> tuple[list[tuple[int, ...]], np.ndarray]:
        """Kernel-extraction hook: the exact one-step law out of state *v*.

        Returns ``(states, row)`` where *states* is the enumerated state
        space (see :meth:`state_space`) and *row* the transition
        distribution from *v* aligned with it — computed without
        building the full |Ω| × |Ω| kernel.  This is what the
        statistical battery of :mod:`repro.verify` compares engine
        one-step samples against.
        """
        v = np.asarray(v, dtype=np.int64)
        n = v.shape[0]
        m = int(v.sum())
        states = ExactEngine.state_space(spec, n, m if spec.kind == "closed" else None)
        index = {s: k for k, s in enumerate(states)}
        key = tuple(int(x) for x in v)
        if key not in index:
            raise ValueError(f"state {key} is not normalized / not in the state space")
        row = np.zeros(len(states), dtype=np.float64)
        if spec.kind == "open":
            _open_phase_distribution(spec, v, int(spec.max_balls), index, row)
        elif spec.step.synchronous:
            _synchronous_phase_distribution(spec, v, index, row)
        else:
            _phase_distribution(spec, v, index, row)
        return states, row

    @staticmethod
    def kernel(spec: ProcessSpec, n: int, m: int | None = None) -> FiniteMarkovChain:
        """Build the exact transition kernel of *spec* on n bins.

        Closed specs require the ball count *m* (state space Ω_m); open
        specs take their cap from ``spec.max_balls`` (state space
        ⋃_{k ≤ cap} Ω_k) and ignore *m*.
        """
        ok, why = ExactEngine.supports(spec)
        if not ok:
            raise ValueError(f"spec {spec.name!r} has no exact kernel: {why}")
        n = check_positive_int("n", n)
        if spec.kind == "open":
            return ExactEngine._open_kernel(spec, n)
        if m is None:
            raise ValueError("closed specs need the ball count m")
        m = check_positive_int("m", m)
        states = all_partitions(m, n)
        index = {s: k for k, s in enumerate(states)}
        P = np.zeros((len(states), len(states)), dtype=np.float64)
        fill = (
            _synchronous_phase_distribution
            if spec.step.synchronous
            else _phase_distribution
        )
        for k, s in enumerate(states):
            fill(spec, np.array(s, dtype=np.int64), index, P[k])
        return FiniteMarkovChain(states, P)

    @staticmethod
    def evolve(
        spec: ProcessSpec,
        start: np.ndarray | list | tuple,
        steps: int,
        *,
        eps: float = 0.25,
        chain: FiniteMarkovChain | None = None,
    ) -> np.ndarray:
        """Evolve the exact distribution μ_t = δ_start·Pᵗ; returns the TV decay.

        The exact engine's "trajectory" is the distribution itself:
        starting from the point mass at *start* the method advances
        μ_t one kernel application at a time and returns the array
        ``d_TV(μ_t, π)`` for t = 0..steps (π the exact stationary
        distribution) — the precise quantity the paper's τ(ε) bounds
        envelope.  Pass a prebuilt *chain* to amortize the kernel over
        several starts.

        Under observability with probes on (``probe_interval() > 0``)
        every decimated t additionally emits a ``timeseries.jsonl``
        point (series ``exact/<spec>``, stats tv/l2/decrement), and a
        TV recovery monitor fires when the decay first crosses *eps*,
        with Theorem 1's bound as the envelope for closed specs.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        v = np.asarray(start, dtype=np.int64)
        key = tuple(int(x) for x in v)
        if chain is None:
            chain = ExactEngine.kernel(
                spec, v.shape[0], int(v.sum()) if spec.kind == "closed" else None
            )
        from repro.markov.stationary import stationary_distribution

        pi = stationary_distribution(chain)
        dist = chain.point_mass(key)
        probe = None
        every = 0
        if obs.enabled():
            every = obs.probe_interval()
            if every > 0:
                from repro.obs.probes import DistributionProbe, tv_recovery_monitor

                series = f"exact/{spec.name}"
                bound = None
                if spec.kind == "closed" and int(v.sum()) >= 2:
                    from repro.coupling.recovery import theorem1_bound

                    bound = theorem1_bound(int(v.sum()), eps)
                probe = DistributionProbe(
                    series, pi,
                    monitors=(tv_recovery_monitor(series, eps, bound_step=bound),),
                )
        tv = np.empty(steps + 1, dtype=np.float64)
        tv[0] = 0.5 * float(np.abs(dist - pi).sum())
        if probe is not None:
            probe.observe(0, dist)
        for t in range(1, steps + 1):
            dist = chain.step_distribution(dist)
            tv[t] = 0.5 * float(np.abs(dist - pi).sum())
            if probe is not None and t % every == 0:
                probe.observe(t, dist)
        if obs.enabled():
            obs.metrics().counter("exact.evolve_steps").inc(steps)
        return tv

    @staticmethod
    def _open_kernel(spec: ProcessSpec, n: int) -> FiniteMarkovChain:
        cap = int(spec.max_balls)  # supports() guaranteed it is set
        states = ExactEngine.state_space(spec, n)
        index = {s: k for k, s in enumerate(states)}
        P = np.zeros((len(states), len(states)), dtype=np.float64)
        for k, s in enumerate(states):
            _open_phase_distribution(
                spec, np.array(s, dtype=np.int64), cap, index, P[k]
            )
        return FiniteMarkovChain(states, P)
