"""Pluggable execution engines over declarative process specs.

The §3.3 abstraction — a removal law plus a placement rule iterated
over a normalized load vector — is declared once as a
:class:`~repro.engine.spec.ProcessSpec` and executed by any of three
engines:

* :class:`~repro.engine.scalar.ScalarEngine` — one O(log n) phase at a
  time; the reference path every spec supports;
* :class:`~repro.engine.vectorized.VectorizedEngine` — an (R, n)
  whole-array stepper for every spec whose rule has an
  inverse-transform insertion law (ABKU[d]; ADAP(χ) is rejected with a
  reason);
* :class:`~repro.engine.exact.ExactEngine` — dense transition kernels
  over enumerated partitions for small instances.

Specs also carry a *step shape* (:class:`~repro.engine.spec.StepLaw`):
the sequential §3.3 phase, or the synchronous Repeated Balls-into-Bins
step (every nonempty bin releases one ball; parallel re-placement) —
all three engines execute both shapes.

See ``docs/ENGINES.md`` for the spec/engine contract and how to add a
new process in one file; ``docs/RBB.md`` for the synchronous family;
``python -m repro engines`` prints the capability matrix.
"""

from repro.engine.exact import ExactEngine
from repro.engine.registry import (
    ENGINES,
    SpecEntry,
    engine_for,
    engine_support,
    get_engine,
    register_spec,
    registered_specs,
    spec_entries,
)
from repro.engine.scalar import OpenSpecProcess, ScalarEngine, SpecProcess
from repro.engine.spec import (
    BallRemoval,
    BinRemoval,
    ProcessSpec,
    RemovalLaw,
    SequentialStep,
    StepLaw,
    SynchronousStep,
    WeightedRemoval,
    custom_removal_spec,
    open_spec,
    rbb_spec,
    rbb_twochoice_spec,
    rbb_uniform_spec,
    relocation_spec,
    scenario_a_spec,
    scenario_b_spec,
)
from repro.engine.vectorized import VectorizedEngine, VectorizedProcess

__all__ = [
    "ENGINES",
    "BallRemoval",
    "BinRemoval",
    "ExactEngine",
    "OpenSpecProcess",
    "ProcessSpec",
    "RemovalLaw",
    "ScalarEngine",
    "SequentialStep",
    "SpecEntry",
    "SpecProcess",
    "StepLaw",
    "SynchronousStep",
    "VectorizedEngine",
    "VectorizedProcess",
    "WeightedRemoval",
    "custom_removal_spec",
    "engine_for",
    "engine_support",
    "get_engine",
    "open_spec",
    "rbb_spec",
    "rbb_twochoice_spec",
    "rbb_uniform_spec",
    "register_spec",
    "registered_specs",
    "relocation_spec",
    "scenario_a_spec",
    "scenario_b_spec",
    "spec_entries",
]
