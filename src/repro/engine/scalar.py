"""Scalar execution engine: the O(log n) reference path.

One Python-level step per phase over a single normalized load vector,
using the Fact 3.2 primitives.  This engine executes *every*
:class:`~repro.engine.spec.ProcessSpec` (it is the reference the other
engines are validated against) and keeps the per-law fast paths the
dedicated simulators had:

* :class:`~repro.engine.spec.BallRemoval` — a Fenwick tree over the
  loads makes the 𝒜(v) draw O(log n) (the hot loop of E1/E2/E7);
* :class:`~repro.engine.spec.BinRemoval` — the nonempty count s is
  maintained incrementally, so the ℬ(v) draw is O(1);
* anything else — generic inverse-CDF at a fresh uniform, O(n).

Relocation disables the Fenwick/s fast paths (the extra move would
desynchronize the mirrors), matching the dedicated
:class:`~repro.balls.relocation.RelocationProcess` it replaces.

RNG draw order per law is bit-compatible with the pre-engine
simulators, so seeded runs of the legacy classes (now thin subclasses)
reproduce their historical trajectories.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro import obs
from repro.balls.load_vector import LoadVector, ominus_index, oplus_index
from repro.balls.process import DynamicAllocationProcess
from repro.engine.spec import BallRemoval, BinRemoval, ProcessSpec
from repro.utils.fenwick import FenwickTree
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SpecProcess", "OpenSpecProcess", "ScalarEngine"]


class SpecProcess(DynamicAllocationProcess):
    """Scalar simulator of a closed :class:`ProcessSpec` (one phase = §3.3)."""

    def __init__(
        self,
        spec: ProcessSpec,
        state: Union[LoadVector, np.ndarray, list],
        *,
        seed: SeedLike = None,
    ):
        if spec.kind != "closed":
            raise ValueError(
                f"SpecProcess runs closed specs; use OpenSpecProcess for {spec.name!r}"
            )
        if spec.step.synchronous:
            raise ValueError(
                f"SpecProcess runs sequential specs; use "
                f"repro.balls.rbb.RBBProcess for {spec.name!r}"
            )
        super().__init__(state, seed=seed)
        self.spec = spec
        self.rule = spec.rule
        self._obs_name = spec.name
        self._law = spec.removal
        self._m = int(self._v.sum())
        self.relocations = 0
        # Fast paths mirror the load array; relocation moves would
        # desynchronize them, so they only engage at p_relocate = 0.
        self._fenwick: FenwickTree | None = None
        self._s = -1
        if spec.p_relocate == 0.0:
            if isinstance(self._law, BallRemoval):
                self._fenwick = FenwickTree(self._v)
            elif isinstance(self._law, BinRemoval):
                self._s = int(np.searchsorted(-self._v, 0, side="left"))

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["relocations"] = self.relocations
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self.relocations = int(state.get("relocations", 0))

    def _sync_derived(self) -> None:
        # Rebuild the per-law fast-path mirrors from the restored loads
        # (same construction as __init__; checkpoints never carry them).
        self._fenwick = None
        self._s = -1
        if self.spec.p_relocate == 0.0:
            if isinstance(self._law, BallRemoval):
                self._fenwick = FenwickTree(self._v)
            elif isinstance(self._law, BinRemoval):
                self._s = int(np.searchsorted(-self._v, 0, side="left"))

    def _obs_account(self, steps: int) -> None:
        super()._obs_account(steps)
        reg = obs.metrics()
        if self._fenwick is not None:
            # One find() plus the two ±1 updates mirroring Fact 3.2.
            reg.counter(f"{self._obs_name}.fenwick_ops").inc(3 * steps)
        if self._s >= 0:
            reg.gauge(f"{self._obs_name}.nonempty_bins").set(self._s)

    def step(self) -> None:
        rng = self._rng
        v = self._v
        # Remove (per-law fast path; draw order matches the legacy sims).
        if self._fenwick is not None:
            i = self._fenwick.find(int(rng.integers(0, self._m)))
            s_idx = self._decrement_at(i)
            self._fenwick.add(s_idx, -1)
        elif self._s >= 0:
            i = int(rng.integers(0, self._s))
            s_idx = self._decrement_at(i)
            if v[s_idx] == 0:
                self._s -= 1
        else:
            i = self._law.quantile(v, float(rng.random()))
            self._decrement_at(i)
        # Place.
        j = self.rule.select(v, rng)
        jj = self._increment_at(j)
        if self._fenwick is not None:
            self._fenwick.add(jj, +1)
        elif self._s >= 0 and v[jj] == 1:
            self._s += 1
        # Optional relocation: fullest bin → rule-selected target.
        p = self.spec.p_relocate
        if p > 0 and rng.random() < p:
            target = self.rule.select(v, rng)
            if v[0] - v[target] >= 2:
                self._decrement_at(0)
                self._increment_at(target)
                self.relocations += 1
        self._t += 1


class OpenSpecProcess:
    """Scalar simulator of an open :class:`ProcessSpec` (§7 variable m).

    Each step a fair coin picks: remove one ball by the spec's law
    (no-op on the empty state, matching the paper's "remove a random
    *existing* ball"), or place one ball by the rule (no-op at the
    ``max_balls`` cap when set).
    """

    def __init__(
        self,
        spec: ProcessSpec,
        state: Union[LoadVector, np.ndarray, list],
        *,
        seed: SeedLike = None,
    ):
        if spec.kind != "open":
            raise ValueError(
                f"OpenSpecProcess runs open specs; use SpecProcess for {spec.name!r}"
            )
        if isinstance(state, LoadVector):
            v = state.loads.copy()
        else:
            v = LoadVector(state).loads.copy()
        self._v = v
        self.spec = spec
        self.rule = spec.rule
        self.max_balls = spec.max_balls
        self._law = spec.removal
        self._rng = as_generator(seed)
        self._t = 0

    @property
    def n(self) -> int:
        """Number of bins."""
        return int(self._v.shape[0])

    @property
    def m(self) -> int:
        """Current (varying) number of balls."""
        return int(self._v.sum())

    @property
    def t(self) -> int:
        """Steps executed."""
        return self._t

    @property
    def state(self) -> LoadVector:
        """Defensive snapshot of the normalized state."""
        return LoadVector(self._v.copy(), normalize=False)

    @property
    def loads(self) -> np.ndarray:
        """Live descending load array (read-only use)."""
        return self._v

    def step(self) -> None:
        """One open-system step: fair coin → remove or insert."""
        rng = self._rng
        if rng.random() < 0.5:
            self._remove(float(rng.random()))
        else:
            self._insert(rng)
        self._t += 1

    def step_with(self, coin: bool, u_remove: float, rng: np.random.Generator) -> None:
        """Externally driven step, for coupling two copies on shared randomness."""
        if coin:
            self._remove(u_remove)
        else:
            self._insert(rng)
        self._t += 1

    def _remove(self, u: float) -> None:
        if self._v.sum() == 0:
            return  # nothing to remove: no-op, as in the paper's example
        i = self._law.quantile(self._v, u)
        self._v[ominus_index(self._v, i)] -= 1

    def _insert(self, rng: np.random.Generator) -> None:
        if self.max_balls is not None and self._v.sum() >= self.max_balls:
            return  # bounded-population variant (§7 first class)
        j = self.rule.select(self._v, rng)
        self._v[oplus_index(self._v, j)] += 1

    def _get_probe(self):
        """Lazily built chain probe (see the closed-spec counterpart).

        Open systems have no fixed m, so the recovery envelope is pinned
        to the ball count at probe creation — the natural "recover to
        where we started being watched" notion for §7 runs.
        """
        probe = getattr(self, "_chain_probe", None)
        if probe is None:
            from repro.obs.probes import ChainProbe, max_load_recovery_monitor

            series = f"{self.spec.name}/chain"
            probe = ChainProbe(
                series, monitors=(max_load_recovery_monitor(series, self.n, self.m),)
            )
            self._chain_probe = probe
        return probe

    def state_dict(self) -> dict:
        """Open-system state for checkpoint/resume (loads, RNG, phase)."""
        state: dict = {
            "loads": self._v.copy(),
            "rng": self._rng.bit_generator.state,
            "t": self._t,
        }
        probe = getattr(self, "_chain_probe", None)
        if probe is not None:
            state["probe"] = probe.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this simulator.

        The probe's recovery envelope was pinned to the ball count at
        probe *creation*; its monitor state (threshold included) rides
        along in the snapshot, so a resumed open run keeps the original
        envelope even though ``self.m`` has drifted since.
        """
        v = np.asarray(state["loads"], dtype=np.int64)
        if v.shape != self._v.shape:
            raise ValueError(
                f"checkpoint has n={v.shape[0]}, process has n={self._v.shape[0]}"
            )
        self._v[:] = v
        self._rng.bit_generator.state = state["rng"]
        self._t = int(state["t"])
        if "probe" in state:
            self._get_probe().load_state(state["probe"])

    def run(self, steps: int) -> "OpenSpecProcess":
        """Execute *steps* steps; returns self."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        if not obs.enabled():
            for _ in range(steps):
                self.step()
            return self
        with obs.span(f"{self.spec.name}/run", steps=steps, n=self.n):
            every = obs.probe_interval()
            if every > 0:
                probe = self._get_probe()
                for _ in range(steps):
                    self.step()
                    if self._t % every == 0:
                        probe.observe(self._t, self._v)
            else:
                for _ in range(steps):
                    self.step()
        obs.metrics().counter(f"{self.spec.name}.steps").inc(steps)
        return self

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, m={self.m}, "
            f"spec={self.spec.name!r}, t={self._t})"
        )


class ScalarEngine:
    """The reference engine: executes every spec, one phase at a time."""

    name = "scalar"

    @staticmethod
    def supports(spec: ProcessSpec) -> tuple[bool, str]:
        """Every spec runs on the scalar path (it is the reference)."""
        return True, "reference path"

    @staticmethod
    def make(
        spec: ProcessSpec,
        state: Union[LoadVector, np.ndarray, list],
        *,
        seed: SeedLike = None,
    ) -> Union[SpecProcess, OpenSpecProcess, "RBBProcess"]:
        """Instantiate the scalar simulator for *spec* at *state*."""
        if spec.step.synchronous:
            from repro.balls.rbb import RBBProcess

            return RBBProcess(spec, state, seed=seed)
        if spec.kind == "open":
            return OpenSpecProcess(spec, state, seed=seed)
        return SpecProcess(spec, state, seed=seed)

    @staticmethod
    def sample_transitions(
        spec: ProcessSpec,
        state: Union[LoadVector, np.ndarray, list],
        draws: int,
        *,
        steps: int = 1,
        seed: SeedLike = None,
    ) -> list[tuple[int, ...]]:
        """Statistical-acceptance hook: *draws* i.i.d. end states.

        Each draw restarts a fresh simulator at *state*, advances it
        *steps* phases, and reads the normalized end state; all draws
        share one RNG stream, so the whole batch is reproducible from
        one seed.  The chi-square battery of :mod:`repro.verify`
        compares these against :meth:`ExactEngine.transition_row`.
        """
        draws = check_positive_int("draws", draws)
        rng = as_generator(seed)
        out: list[tuple[int, ...]] = []
        for _ in range(draws):
            proc = ScalarEngine.make(spec, state, seed=rng)
            proc.run(steps)
            out.append(tuple(int(x) for x in proc.loads))
        return out
