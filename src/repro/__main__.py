"""``python -m repro`` entry point — see :mod:`repro.cli`."""

from repro.cli import main

raise SystemExit(main())
