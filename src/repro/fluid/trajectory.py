"""Fluid trajectories vs simulated recovery paths.

The dynamic fluid system doesn't just have the right fixed point — it
predicts the *entire recovery trajectory* from a crash: starting the
ODE at the crash profile (one bin holding all m balls means
s_i(0) = 1/n for i ≤ m) and integrating in the n-phases-per-unit time
scale should match the simulated mean tail s_i(t) along the way.  This
module builds the crash initial profile, runs the comparison, and
returns both curves — the strongest validation of the Mitzenmacher
substrate because it checks dynamics, not statics (tested at d = 2 for
both scenarios).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.balls.load_vector import LoadVector
from repro.balls.rules import ABKURule
from repro.engine.spec import scenario_a_spec, scenario_b_spec
from repro.engine.vectorized import VectorizedEngine
from repro.fluid.dynamic_ode import DynamicFluidSolution, solve_dynamic_fluid
from repro.utils.rng import SeedLike

__all__ = ["crash_profile", "compare_recovery_trajectory"]


def crash_profile(m: int, n: int, levels: int) -> np.ndarray:
    """Initial fluid tail of the all-in-one-bin crash: s_i = 1/n, i ≤ m.

    Requires m ≤ levels so no mass is truncated.
    """
    if m > levels:
        raise ValueError(f"need levels >= m (got m={m}, levels={levels})")
    s0 = np.zeros(levels)
    s0[:m] = 1.0 / n
    return s0


def compare_recovery_trajectory(
    n: int,
    *,
    d: int = 2,
    scenario: Literal["a", "b"] = "a",
    crash_levels: int = 8,
    t_final: float = 12.0,
    checkpoints: int = 6,
    replicas: int = 20,
    tracked_level: int = 2,
    seed: SeedLike = None,
) -> dict:
    """Simulated vs fluid s_{tracked_level}(t) along a crash recovery.

    To keep the fluid system's truncation small the crash puts
    ``crash_levels·(n/crash_levels)``… more simply: the crash state
    piles m = n balls into n/crash_levels bins of height crash_levels
    each (a 'partial crash' whose profile is exactly representable),
    and both the (R-replica batch) simulator and the ODE start there.
    Returns dict with times, fluid curve, simulated curve and the max
    absolute gap.
    """
    if n % crash_levels != 0:
        raise ValueError("n must be divisible by crash_levels")
    m = n
    heavy_bins = n // crash_levels
    loads = [crash_levels] * heavy_bins + [0] * (n - heavy_bins)
    start = LoadVector(loads)
    levels = crash_levels + 25
    s0 = np.zeros(levels)
    s0[:crash_levels] = heavy_bins / n
    times = np.linspace(0.0, t_final, checkpoints + 1)
    fluid: DynamicFluidSolution = solve_dynamic_fluid(
        d, 1.0, scenario=scenario, t_final=t_final, levels=levels,
        s0=s0, t_eval=times,
    )
    fluid_curve = np.array(
        [fluid.tail_at(k)[tracked_level] for k in range(len(fluid.times))]
    )

    spec = (scenario_a_spec if scenario == "a" else scenario_b_spec)(ABKURule(d))
    bp = VectorizedEngine.make(spec, start, replicas, seed=seed)
    sim_curve = [float((bp.loads >= tracked_level).mean())]
    steps_per_unit = n  # the fluid time scale: n phases per unit
    done = 0
    for t in times[1:]:
        target = int(round(t * steps_per_unit))
        bp.run(target - done)
        done = target
        sim_curve.append(float((bp.loads >= tracked_level).mean()))
    sim_curve = np.array(sim_curve)
    gap = float(np.abs(fluid_curve - sim_curve).max())
    return {
        "times": times,
        "fluid": fluid_curve,
        "simulated": sim_curve,
        "max_gap": gap,
    }
