"""Fluid limit of the static ABKU[d] allocation.

Scale time so balls arrive at rate n, and let s_i(t) be the fraction of
bins with load ≥ i.  A new ball lands in a bin of load exactly i − 1
(raising s_i) iff all d choices have load ≥ i − 1 but not all have
load ≥ i, giving Kurtz's density-dependent system

    ds_i/dt = s_{i−1}^d − s_i^d,   s_0 ≡ 1,  s_i(0) = 0 (i ≥ 1).

Integrating to t = m/n describes the allocation of m balls; the finite
system of n bins concentrates around the solution, and the max load is
predicted by the largest i with s_i(m/n) ≥ 1/n (one bin's worth of
mass).  This reproduces Mitzenmacher's Chapter-2-style tables used as
the E6 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.utils.validation import check_positive_int

__all__ = ["StaticFluidSolution", "solve_static_fluid"]


@dataclass(frozen=True)
class StaticFluidSolution:
    """Terminal fluid state of the static ABKU[d] system."""

    d: int
    t_final: float
    s: np.ndarray
    """s[i] = limiting fraction of bins with load ≥ i (s[0] = 1)."""

    def tail(self, i: int) -> float:
        """s_i, with s_i = 0 beyond the truncation level."""
        if i < 0:
            raise ValueError(f"i must be >= 0, got {i}")
        return float(self.s[i]) if i < len(self.s) else 0.0

    def predicted_max_load(self, n: int) -> int:
        """Largest i with s_i ≥ 1/n: the fluid max-load prediction."""
        n = check_positive_int("n", n)
        idx = np.nonzero(self.s >= 1.0 / n)[0]
        return int(idx.max()) if idx.size else 0

    def load_fractions(self) -> np.ndarray:
        """p[i] = fraction of bins with load exactly i."""
        ext = np.append(self.s, 0.0)
        return ext[:-1] - ext[1:]


def solve_static_fluid(
    d: int,
    c: float = 1.0,
    *,
    levels: int = 60,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> StaticFluidSolution:
    """Integrate the static fluid system to time c = m/n.

    ``levels`` truncates the load ladder; the doubly-exponential decay
    of s_i makes 60 levels overkill for any d ≥ 2 and ample for d = 1
    at laptop scales.
    """
    d = check_positive_int("d", d)
    if c <= 0:
        raise ValueError(f"c = m/n must be > 0, got {c}")
    levels = check_positive_int("levels", levels)

    def rhs(_t: float, s: np.ndarray) -> np.ndarray:
        ext = np.concatenate(([1.0], np.clip(s, 0.0, 1.0)))
        return ext[:-1] ** d - ext[1:] ** d

    sol = solve_ivp(
        rhs,
        (0.0, float(c)),
        np.zeros(levels),
        method="LSODA",
        rtol=rtol,
        atol=atol,
    )
    if not sol.success:
        raise RuntimeError(f"static fluid integration failed: {sol.message}")
    s_final = np.concatenate(([1.0], np.clip(sol.y[:, -1], 0.0, 1.0)))
    return StaticFluidSolution(d=d, t_final=float(c), s=s_final)
