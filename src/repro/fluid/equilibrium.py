"""Fixed points of the dynamic fluid systems and max-load predictions.

Setting ds_i/dt = 0 in the dynamic systems of
:mod:`repro.fluid.dynamic_ode` gives the stationary tail profile.  For
scenario B with c = 1 the fixed point famously satisfies
s_i ≈ s_{i−1}^d (up to the s_1 normalization), i.e. the doubly
exponential decay s_i ≈ s_1^{(d^i − 1)/(d − 1)} behind the
ln ln n / ln d maximum load.  We compute fixed points numerically by
damped fixed-point iteration on the balance equations (robust where a
generic root-finder struggles with the near-degenerate tail).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.fluid.dynamic_ode import dynamic_rhs
from repro.utils.validation import check_positive_int

__all__ = ["fixed_point", "predicted_max_load_from_tail", "doubly_exponential_tail"]


def fixed_point(
    d: int,
    c: float = 1.0,
    *,
    scenario: Literal["a", "b"] = "a",
    levels: int = 60,
    tol: float = 1e-9,
    t_final: float = 2000.0,
) -> np.ndarray:
    """Stationary tail (s_0 = 1, s_1, …) of the dynamic fluid system.

    Computed by integrating the (globally attracting) dynamics to large
    time with a stiff solver — more robust than damped iteration, whose
    explicit steps are unstable for scenario A's i-growing removal
    rates.  The residual ||rhs||_∞ at the endpoint is verified ≤ *tol*.
    """
    from repro.fluid.dynamic_ode import solve_dynamic_fluid

    d = check_positive_int("d", d)
    sol = solve_dynamic_fluid(
        d, c, scenario=scenario, t_final=t_final, levels=levels
    )
    s = np.clip(sol.trajectory[-1], 0.0, 1.0)
    residual = float(np.abs(dynamic_rhs(s, d, c, scenario)).max())
    if residual > tol:
        raise RuntimeError(
            f"fluid dynamics not stationary by t={t_final} "
            f"(residual {residual:.2e} > {tol})"
        )
    return np.concatenate(([1.0], s))


def predicted_max_load_from_tail(s: np.ndarray, n: int) -> int:
    """Largest i with s_i ≥ 1/n: the finite-n max-load prediction."""
    n = check_positive_int("n", n)
    idx = np.nonzero(np.asarray(s) >= 1.0 / n)[0]
    return int(idx.max()) if idx.size else 0


def doubly_exponential_tail(d: int, s1: float, levels: int = 30) -> np.ndarray:
    """The idealized tail s_i = s_1^{(d^i − 1)/(d − 1)} (d ≥ 2).

    The closed-form shape the scenario-B fixed point approaches; used
    as a reference column in E6.
    """
    d = check_positive_int("d", d)
    if d < 2:
        raise ValueError("the doubly exponential form needs d >= 2")
    if not 0.0 < s1 <= 1.0:
        raise ValueError(f"s1 must be in (0, 1], got {s1}")
    i = np.arange(levels + 1, dtype=np.float64)
    expo = (d**i - 1.0) / (d - 1.0)
    out = s1**expo
    out[0] = 1.0
    return out
