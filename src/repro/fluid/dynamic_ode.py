"""Fluid limits of the dynamic processes I_A and I_B.

Scale time so that n phases happen per unit (each phase = one removal,
one insertion), keep c = m/n fixed, and track s_i = fraction of bins
with load ≥ i.  The insertion term is the static one; the removal term
depends on the scenario:

* **scenario A** (remove a uniform ball): a ball sits in a bin of load
  exactly i with probability i·(s_i − s_{i+1})/c, so

      ds_i/dt = (s_{i−1}^d − s_i^d) − i·(s_i − s_{i+1})/c;

* **scenario B** (remove from a uniform nonempty bin): the hit bin has
  load exactly i with probability (s_i − s_{i+1})/s_1, so

      ds_i/dt = (s_{i−1}^d − s_i^d) − (s_i − s_{i+1})/s_1.

Both systems conserve Σ_{i≥1} s_i = c (one ball removed, one added per
phase) and converge to the fixed points computed in
:mod:`repro.fluid.equilibrium`; E6 checks the finite-n simulators
against these trajectories and fixed points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from repro.utils.validation import check_positive_int

__all__ = ["DynamicFluidSolution", "solve_dynamic_fluid", "dynamic_rhs"]


def dynamic_rhs(
    s: np.ndarray, d: int, c: float, scenario: Literal["a", "b"]
) -> np.ndarray:
    """Right-hand side of the dynamic fluid system (s excludes s_0 ≡ 1)."""
    s = np.clip(s, 0.0, 1.0)
    ext = np.concatenate(([1.0], s, [0.0]))  # s_0 .. s_{L+1}
    insert = ext[:-2] ** d - ext[1:-1] ** d
    exact = ext[1:-1] - ext[2:]  # fraction at exactly i, i = 1..L
    if scenario == "a":
        i = np.arange(1, len(s) + 1, dtype=np.float64)
        remove = i * exact / c
    else:
        s1 = max(float(ext[1]), 1e-300)
        remove = exact / s1
    return insert - remove


@dataclass(frozen=True)
class DynamicFluidSolution:
    """Trajectory of the dynamic fluid system."""

    d: int
    c: float
    scenario: str
    times: np.ndarray
    trajectory: np.ndarray
    """trajectory[k] = s-vector (excluding s_0) at times[k]."""

    @property
    def s_final(self) -> np.ndarray:
        """Terminal tail vector including s_0 = 1."""
        return np.concatenate(([1.0], np.clip(self.trajectory[-1], 0.0, 1.0)))

    def predicted_max_load(self, n: int) -> int:
        """Largest i with terminal s_i ≥ 1/n."""
        n = check_positive_int("n", n)
        idx = np.nonzero(self.s_final >= 1.0 / n)[0]
        return int(idx.max()) if idx.size else 0

    def tail_at(self, k: int) -> np.ndarray:
        """Tail vector (with s_0) at time index k."""
        return np.concatenate(([1.0], np.clip(self.trajectory[k], 0.0, 1.0)))


def solve_dynamic_fluid(
    d: int,
    c: float = 1.0,
    *,
    scenario: Literal["a", "b"] = "a",
    t_final: float = 50.0,
    levels: int = 60,
    s0: Sequence[float] | np.ndarray | None = None,
    t_eval: Sequence[float] | np.ndarray | None = None,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> DynamicFluidSolution:
    """Integrate the dynamic fluid system from an arbitrary initial tail.

    ``s0`` is the initial tail (s_1, s_2, …); default is the balanced
    profile of c = m/n balls (useful crash profiles: a point mass,
    i.e. s_i = 1/n for i ≤ m — pass it explicitly).  Conservation of
    Σ s_i is enforced to 1e-6 as a sanity check on the integration.
    """
    d = check_positive_int("d", d)
    if c <= 0:
        raise ValueError(f"c = m/n must be > 0, got {c}")
    if scenario not in ("a", "b"):
        raise ValueError(f"scenario must be 'a' or 'b', got {scenario!r}")
    levels = check_positive_int("levels", levels)
    if s0 is None:
        # Balanced profile: floor(c) full levels plus a fractional one.
        full = int(np.floor(c))
        init = np.zeros(levels)
        init[:full] = 1.0
        if full < levels:
            init[full] = c - full
    else:
        init = np.zeros(levels)
        vals = np.asarray(s0, dtype=np.float64)
        if vals.size > levels:
            raise ValueError(f"s0 longer than levels={levels}")
        init[: vals.size] = np.clip(vals, 0.0, 1.0)
    if abs(init.sum() - c) > 1e-6:
        raise ValueError(
            f"initial tail sums to {init.sum():.6f}, expected c = {c}"
        )

    sol = solve_ivp(
        lambda _t, s: dynamic_rhs(s, d, c, scenario),
        (0.0, float(t_final)),
        init,
        method="LSODA",
        t_eval=None if t_eval is None else np.asarray(t_eval, dtype=np.float64),
        rtol=rtol,
        atol=atol,
    )
    if not sol.success:
        raise RuntimeError(f"dynamic fluid integration failed: {sol.message}")
    traj = sol.y.T
    final_mass = float(np.clip(traj[-1], 0.0, 1.0).sum())
    if abs(final_mass - c) > 1e-3:
        raise RuntimeError(
            f"fluid mass not conserved: ended at {final_mass}, expected {c}"
        )
    return DynamicFluidSolution(
        d=d, c=float(c), scenario=scenario, times=sol.t, trajectory=traj
    )
