"""Mitzenmacher's differential-equation (fluid-limit) method.

The paper positions its coupling technique as the *complement* of
Mitzenmacher's framework: his density-dependent-jump-Markov-process
analysis predicts the typical (stationary) state — e.g. the maximum
load ln ln n / ln d (1 + o(1)) — while path coupling bounds how fast
the process reaches it.  To reproduce the combined story we implement
the fluid limits:

* :mod:`repro.fluid.static_ode` — the classic static ABKU[d] system
  ds_i/dt = s_{i−1}^d − s_i^d (s_i = fraction of bins with load ≥ i);
* :mod:`repro.fluid.dynamic_ode` — the dynamic fluid limits of I_A and
  I_B (insertion term as above, removal term per the removal model);
* :mod:`repro.fluid.equilibrium` — fixed points of the dynamic systems
  and the predicted stationary max load, compared against simulation in
  experiment E6.
"""

from repro.fluid.dynamic_ode import DynamicFluidSolution, solve_dynamic_fluid
from repro.fluid.equilibrium import (
    fixed_point,
    predicted_max_load_from_tail,
)
from repro.fluid.static_ode import StaticFluidSolution, solve_static_fluid
from repro.fluid.trajectory import compare_recovery_trajectory, crash_profile

__all__ = [
    "DynamicFluidSolution",
    "StaticFluidSolution",
    "fixed_point",
    "predicted_max_load_from_tail",
    "compare_recovery_trajectory",
    "crash_profile",
    "solve_dynamic_fluid",
    "solve_static_fluid",
]
