"""Spectral analysis: eigenvalue gap and relaxation time.

The second-largest eigenvalue modulus λ* of an ergodic chain controls
asymptotic convergence: the relaxation time 1/(1 − λ*) lower-bounds the
mixing time up to constants and, for reversible chains, also
upper-bounds it up to a log(1/π_min) factor.  Experiment E9 reports the
relaxation time next to the exact τ(ε) and the path-coupling bound to
show where each sits.
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = ["eigenvalues", "spectral_gap", "relaxation_time", "slem"]


def eigenvalues(chain: FiniteMarkovChain) -> np.ndarray:
    """All eigenvalues of P, sorted by decreasing modulus."""
    vals = np.linalg.eigvals(chain.P)
    order = np.argsort(-np.abs(vals))
    return vals[order]


def slem(chain: FiniteMarkovChain) -> float:
    """Second-largest eigenvalue modulus λ*.

    The top eigenvalue of a stochastic matrix is 1; we drop one
    eigenvalue closest to 1 and return the largest remaining modulus.
    """
    vals = eigenvalues(chain)
    # Drop the eigenvalue nearest to 1 (the Perron root).
    drop = int(np.argmin(np.abs(vals - 1.0)))
    rest = np.delete(vals, drop)
    if rest.size == 0:
        return 0.0
    return float(np.abs(rest).max())


def spectral_gap(chain: FiniteMarkovChain) -> float:
    """1 − λ*."""
    return 1.0 - slem(chain)


def relaxation_time(chain: FiniteMarkovChain) -> float:
    """t_rel = 1 / (1 − λ*); ∞ for a gap of 0."""
    gap = spectral_gap(chain)
    if gap <= 0.0:
        return float("inf")
    return 1.0 / gap
