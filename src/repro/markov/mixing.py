"""Exact total-variation mixing times.

The paper defines τ(ε) = min{T : ∀t ≥ T, max_x ||L(M_t|M_0=x) − π||_TV
≤ ε}.  For dense chains of a few hundred states we can compute the
worst-case TV distance d(t) = max_x ||P^t(x,·) − π|| exactly by iterated
matrix multiplication, and hence the exact mixing time — the ground
truth for experiment E9.  Because d(t) is non-increasing (a standard
fact), the first t with d(t) ≤ ε *is* τ(ε).
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import FiniteMarkovChain
from repro.markov.stationary import stationary_distribution

__all__ = ["tv_distance", "tv_decay", "exact_mixing_time", "worst_case_tv"]


def tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ½||p − q||₁ between two pmfs."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def worst_case_tv(Pt: np.ndarray, pi: np.ndarray) -> float:
    """d(t) = max over starting states of ||P^t(x,·) − π||_TV."""
    return 0.5 * float(np.abs(Pt - pi[None, :]).sum(axis=1).max())


def tv_decay(
    chain: FiniteMarkovChain,
    t_max: int,
    pi: np.ndarray | None = None,
) -> np.ndarray:
    """The sequence d(0), d(1), …, d(t_max) of worst-case TV distances."""
    if pi is None:
        pi = stationary_distribution(chain)
    out = np.empty(t_max + 1)
    Pt = np.eye(chain.size)
    out[0] = worst_case_tv(Pt, pi)
    for t in range(1, t_max + 1):
        Pt = Pt @ chain.P
        out[t] = worst_case_tv(Pt, pi)
    return out


def exact_mixing_time(
    chain: FiniteMarkovChain,
    eps: float = 0.25,
    *,
    t_max: int = 1_000_000,
    pi: np.ndarray | None = None,
) -> int:
    """Exact τ(ε): the first t with d(t) ≤ ε.

    Since d(t) is non-increasing in t, the first crossing time equals
    the paper's τ(ε).  Raises ``RuntimeError`` if not reached by
    *t_max* (which for an ergodic chain means t_max was too small).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if pi is None:
        pi = stationary_distribution(chain)
    Pt = np.eye(chain.size)
    if worst_case_tv(Pt, pi) <= eps:
        return 0
    for t in range(1, t_max + 1):
        Pt = Pt @ chain.P
        if worst_case_tv(Pt, pi) <= eps:
            return t
    raise RuntimeError(f"d(t) did not reach {eps} within {t_max} steps")
