"""Exact analysis of coupled (product) chains.

A coupling of a chain 𝔐 is itself a Markov chain on the product space
X × X.  For small state spaces we can build that product chain from a
coupling's exact joint law and *solve* for quantities the Path Coupling
Lemma only bounds:

* the expected coalescence time E[T_couple] from any pair, via the
  linear system (I − Q)·t = 1 on the non-coalesced pairs;
* the worst-pair expected coalescence time, which by the coupling
  inequality upper-bounds the mixing time: τ(ε) ≤ max-pair
  E[T]/... (Markov), and more directly Pr[X_t ≠ Y_t] ≤ d(t).

Experiment E9's strongest rows come from here: for scenario A the exact
worst-pair expected coalescence is ≈ m·H_m-ish, comfortably inside
Theorem 1's ⌈m ln(m/ε)⌉ budget, with no Monte Carlo anywhere.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

__all__ = ["CoupledChain", "build_coupled_chain_a", "build_coupled_chain_b"]

JointLaw = Callable[
    [np.ndarray, np.ndarray],
    dict[tuple[tuple[int, ...], tuple[int, ...]], float],
]


class CoupledChain:
    """A coupling as an explicit Markov chain on pair states.

    ``pairs`` lists the (x, y) pair states; ``P`` is the transition
    matrix between them.  Diagonal pairs (x = x) must be absorbing as a
    set (a faithful coupling never un-coalesces).
    """

    def __init__(
        self,
        pairs: list[tuple[Hashable, Hashable]],
        P: np.ndarray,
    ):
        if len(pairs) != P.shape[0] or P.shape[0] != P.shape[1]:
            raise ValueError("pairs/P size mismatch")
        rows = P.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-9):
            raise ValueError("P is not row-stochastic")
        self.pairs = pairs
        self.index = {p: i for i, p in enumerate(pairs)}
        self.P = P
        self._check_coalescence_absorbing()

    def _check_coalescence_absorbing(self) -> None:
        for i, (x, y) in enumerate(self.pairs):
            if x != y:
                continue
            for j, p in enumerate(self.P[i]):
                if p > 1e-12:
                    a, b = self.pairs[j]
                    if a != b:
                        raise ValueError(
                            f"coupling un-coalesces: {x} -> ({a}, {b}) "
                            f"with probability {p}"
                        )

    def expected_coalescence_times(self) -> dict[tuple[Hashable, Hashable], float]:
        """E[T_couple] from every pair, by solving (I − Q)·t = 1.

        Q is the sub-matrix over non-coalesced pairs; coalesced pairs
        get 0.
        """
        trans = [i for i, (x, y) in enumerate(self.pairs) if x != y]
        if not trans:
            return {p: 0.0 for p in self.pairs}
        pos = {i: k for k, i in enumerate(trans)}
        Q = np.zeros((len(trans), len(trans)))
        for i in trans:
            for j, p in enumerate(self.P[i]):
                if p > 0 and j in pos:
                    Q[pos[i], pos[j]] = p
        t = np.linalg.solve(np.eye(len(trans)) - Q, np.ones(len(trans)))
        out = {p: 0.0 for p in self.pairs}
        for i in trans:
            out[self.pairs[i]] = float(t[pos[i]])
        return out

    def worst_expected_coalescence(self) -> float:
        """max over pairs of E[T_couple]."""
        return max(self.expected_coalescence_times().values())

    def tail_bound_mixing_time(self, eps: float = 0.25) -> int:
        """A rigorous τ(ε) upper bound from the coupling inequality.

        d(t) ≤ max-pair Pr[T > t] ≤ E[T]/t (Markov), so
        τ(ε) ≤ ⌈max-pair E[T]/ε⌉.
        """
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        return int(np.ceil(self.worst_expected_coalescence() / eps))


def _build_from_joint(
    n: int,
    m: int,
    joint: JointLaw,
) -> CoupledChain:
    """Assemble the pair chain from a coupling's exact joint law.

    For coalesced pairs the chain moves both copies together (any
    faithful coupling does); for distinct pairs the provided joint law
    is used.  The law must be defined for *all* distinct ordered pairs
    — the §4/§5 couplings are only defined on adjacent pairs, so this
    builder extends them with the grand (shared-randomness) coupling
    for the rest via the ``joint`` callable the caller supplies.
    """
    from repro.utils.partitions import all_partitions

    states = all_partitions(m, n)
    pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        (a, b) for a in states for b in states
    ]
    index = {p: i for i, p in enumerate(pairs)}
    P = np.zeros((len(pairs), len(pairs)))
    for (a, b) in pairs:
        i = index[(a, b)]
        law = joint(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
        for (a2, b2), p in law.items():
            P[i, index[(a2, b2)]] += p
    return CoupledChain(pairs, P)


def build_coupled_chain_a(rule, n: int, m: int) -> CoupledChain:
    """Exact pair chain of the §4 coupling (grand-extended off Γ).

    Adjacent pairs use the exact §4 joint law
    (:func:`repro.coupling.scenario_a_coupling.exact_joint_outcomes_a`);
    non-adjacent distinct pairs use the quantile-coupled removal +
    Lemma 3.3 insertion (the grand coupling), enumerated exactly;
    coalesced pairs move together.
    """
    from repro.balls.distributions import quantile_removal_a
    from repro.balls.load_vector import delta_distance, ominus, oplus
    from repro.balls.right_oriented import iter_sources
    from repro.coupling.scenario_a_coupling import exact_joint_outcomes_a

    def joint(a: np.ndarray, b: np.ndarray):
        if np.array_equal(a, b):
            # Move together: removal ~ A(a), insertion shared.
            out: dict = {}
            for i in range(n):
                if a[i] == 0:
                    continue
                p_rm = a[i] / m
                astar = ominus(a, i)
                length = rule.source_length(astar)
                p_src = 1.0 / n**length
                for rs in iter_sources(n, length):
                    a0 = oplus(astar, rule.select_from_source(astar, rs))
                    key = (tuple(map(int, a0)), tuple(map(int, a0)))
                    out[key] = out.get(key, 0.0) + p_rm * p_src
            return out
        if delta_distance(a, b) == 1:
            return exact_joint_outcomes_a(rule, a, b)
        # Grand coupling: shared removal quantile (piecewise constant in
        # u with breakpoints at multiples of 1/m on both sides), shared
        # insertion source.
        out = {}
        for ball in range(m):
            u = (ball + 0.5) / m
            ia = quantile_removal_a(a, u)
            ib = quantile_removal_a(b, u)
            astar = ominus(a, ia)
            bstar = ominus(b, ib)
            length = max(rule.source_length(astar), rule.source_length(bstar))
            p_src = 1.0 / n**length
            for rs in iter_sources(n, length):
                a0 = oplus(astar, rule.select_from_source(astar, rs))
                b0 = oplus(bstar, rule.select_from_source(bstar, rule.phi(rs)))
                key = (tuple(map(int, a0)), tuple(map(int, b0)))
                out[key] = out.get(key, 0.0) + (1.0 / m) * p_src
        return out

    return _build_from_joint(n, m, joint)


def build_coupled_chain_b(rule, n: int, m: int) -> CoupledChain:
    """Exact pair chain of the §5 coupling (grand-extended off Γ)."""
    from repro.balls.distributions import quantile_removal_b
    from repro.balls.load_vector import delta_distance, ominus, oplus
    from repro.balls.right_oriented import iter_sources
    from repro.coupling.scenario_b_coupling import exact_joint_outcomes_b

    def joint(a: np.ndarray, b: np.ndarray):
        if np.array_equal(a, b):
            out: dict = {}
            s = int(np.searchsorted(-a, 0, side="left"))
            for i in range(s):
                p_rm = 1.0 / s
                astar = ominus(a, i)
                length = rule.source_length(astar)
                p_src = 1.0 / n**length
                for rs in iter_sources(n, length):
                    a0 = oplus(astar, rule.select_from_source(astar, rs))
                    key = (tuple(map(int, a0)), tuple(map(int, a0)))
                    out[key] = out.get(key, 0.0) + p_rm * p_src
            return out
        if delta_distance(a, b) == 1:
            return exact_joint_outcomes_b(rule, a, b)
        out = {}
        s1 = int(np.searchsorted(-a, 0, side="left"))
        s2 = int(np.searchsorted(-b, 0, side="left"))
        grid = s1 * s2  # common refinement of the two uniform grids
        for k in range(grid):
            u = (k + 0.5) / grid
            ia = quantile_removal_b(a, u)
            ib = quantile_removal_b(b, u)
            astar = ominus(a, ia)
            bstar = ominus(b, ib)
            length = max(rule.source_length(astar), rule.source_length(bstar))
            p_src = 1.0 / n**length
            for rs in iter_sources(n, length):
                a0 = oplus(astar, rule.select_from_source(astar, rs))
                b0 = oplus(bstar, rule.select_from_source(bstar, rule.phi(rs)))
                key = (tuple(map(int, a0)), tuple(map(int, b0)))
                out[key] = out.get(key, 0.0) + (1.0 / grid) * p_src
        return out

    return _build_from_joint(n, m, joint)
