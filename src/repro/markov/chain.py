"""The :class:`FiniteMarkovChain` container.

A dense row-stochastic matrix over an explicit list of hashable states.
Everything downstream (stationary distributions, mixing, spectra,
ergodicity) operates on this container, so exact kernels built in
:mod:`repro.markov.exact` and :mod:`repro.edgeorient.chain` share one
analysis path.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

__all__ = ["FiniteMarkovChain"]


class FiniteMarkovChain:
    """A finite discrete-time Markov chain with explicit states.

    Parameters
    ----------
    states:
        Hashable state labels; row/column *i* of *P* corresponds to
        ``states[i]``.
    P:
        Row-stochastic transition matrix (validated to tolerance 1e-10).
    """

    def __init__(self, states: Sequence[Hashable], P: np.ndarray):
        P = np.asarray(P, dtype=np.float64)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError(f"P must be square, got shape {P.shape}")
        if len(states) != P.shape[0]:
            raise ValueError(
                f"{len(states)} states but P is {P.shape[0]}x{P.shape[1]}"
            )
        if (P < -1e-12).any():
            raise ValueError("P has negative entries")
        rows = P.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-10):
            bad = int(np.argmax(np.abs(rows - 1.0)))
            raise ValueError(
                f"P is not row-stochastic: row {bad} sums to {rows[bad]!r}"
            )
        self.states = list(states)
        self.index = {s: i for i, s in enumerate(self.states)}
        if len(self.index) != len(self.states):
            raise ValueError("duplicate states")
        self.P = P

    @property
    def size(self) -> int:
        """Number of states."""
        return len(self.states)

    def state_of(self, i: int) -> Hashable:
        """State label of row *i*."""
        return self.states[i]

    def index_of(self, state: Hashable) -> int:
        """Row index of *state* (KeyError if unknown)."""
        return self.index[state]

    def step_distribution(self, dist: np.ndarray) -> np.ndarray:
        """One step of the chain on a distribution row-vector."""
        return dist @ self.P

    def power(self, t: int) -> np.ndarray:
        """P^t by repeated squaring."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return np.linalg.matrix_power(self.P, t)

    def point_mass(self, state: Hashable) -> np.ndarray:
        """Dirac distribution at *state*."""
        d = np.zeros(self.size)
        d[self.index_of(state)] = 1.0
        return d

    def __repr__(self) -> str:
        return f"FiniteMarkovChain(size={self.size})"
