"""Rigorous mixing-time lower bounds.

The paper states lower bounds (Theorem 1 tightness, Ω(n·m), Ω(m²),
Ω(n²)) without proofs; these two certified methods let the tests and
E12 *prove* per-instance lower bounds on τ(ε):

* **relaxation bound** — for any ergodic chain,
  τ(ε) ≥ (t_rel − 1)·ln(1/(2ε)): the slowest eigenmode decays like
  λ*^t, and its TV shadow cannot die faster (Levin–Peres Thm 12.5);
* **reachability bound** — if within t steps the support digraph from
  x cannot reach a set of stationary mass > 1 − ε, then
  d(t) ≥ π(unreached) > ε, so τ(ε) exceeds t.  Computed by BFS layers
  from the worst start; for the crash state this formalizes the "you
  must move Δ(crash, typical) balls one phase at a time" drain argument.

Both are *lower* bounds on the very τ(ε) that
:func:`repro.markov.mixing.exact_mixing_time` computes, so the tests can
sandwich: lower ≤ exact τ ≤ paper bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.markov.chain import FiniteMarkovChain
from repro.markov.spectral import relaxation_time
from repro.markov.stationary import stationary_distribution

__all__ = ["relaxation_lower_bound", "reachability_lower_bound"]


def relaxation_lower_bound(chain: FiniteMarkovChain, eps: float = 0.25) -> int:
    """τ(ε) ≥ ⌈(t_rel − 1)·ln(1/(2ε))⌉ (0 if the formula is vacuous).

    Requires ε < 1/2 (the bound is vacuous otherwise).
    """
    if not 0.0 < eps < 0.5:
        raise ValueError(f"eps must be in (0, 0.5), got {eps}")
    t_rel = relaxation_time(chain)
    if t_rel == float("inf"):
        raise ValueError("chain is periodic; tau is undefined")
    val = (t_rel - 1.0) * math.log(1.0 / (2.0 * eps))
    return max(0, int(math.floor(val)))


def reachability_lower_bound(
    chain: FiniteMarkovChain,
    eps: float = 0.25,
    *,
    pi: np.ndarray | None = None,
) -> int:
    """The BFS lower bound: largest t with some start missing > ε of π.

    For each start x, grow the reachable set layer by layer; while the
    unreached stationary mass exceeds ε, the worst-case TV at that time
    is > ε, hence τ(ε) > t.  Returns max over starts of (first t where
    the reached mass ≥ 1 − ε), which is a valid lower bound on τ(ε).
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if pi is None:
        pi = stationary_distribution(chain)
    size = chain.size
    neighbors: list[np.ndarray] = [
        np.nonzero(chain.P[i] > 0)[0] for i in range(size)
    ]
    best = 0
    for start in range(size):
        reached = np.zeros(size, dtype=bool)
        reached[start] = True
        frontier = [start]
        t = 0
        mass = float(pi[start])
        while mass < 1.0 - eps:
            nxt = []
            for i in frontier:
                for j in neighbors[i]:
                    if not reached[j]:
                        reached[j] = True
                        mass += float(pi[j])
                        nxt.append(int(j))
            frontier = nxt
            t += 1
            if not frontier and mass < 1.0 - eps:
                raise ValueError("chain is reducible; tau is undefined")
        best = max(best, t)
    return best
