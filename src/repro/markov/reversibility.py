"""Reversibility (detailed balance) checks.

A chain is reversible iff π(x)P(x,y) = π(y)P(y,x) for all x, y.  The
spectral mixing machinery is sharpest for reversible chains, so it is
worth *knowing* whether the paper's chains are reversible — and they
generally are not: e.g. I_A-ABKU[2] violates detailed balance already
at n = m = 3 (the tests exhibit the witness pair).  The relaxation-time
columns in E9 are therefore diagnostics, not two-sided bounds, which is
exactly how the experiments use them.
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import FiniteMarkovChain
from repro.markov.stationary import stationary_distribution

__all__ = ["detailed_balance_residual", "is_reversible", "reversibilization"]


def detailed_balance_residual(
    chain: FiniteMarkovChain, pi: np.ndarray | None = None
) -> tuple[float, tuple[int, int]]:
    """(max |π(x)P(x,y) − π(y)P(y,x)|, witness index pair)."""
    if pi is None:
        pi = stationary_distribution(chain)
    F = pi[:, None] * chain.P
    R = np.abs(F - F.T)
    idx = int(np.argmax(R))
    i, j = divmod(idx, chain.size)
    return float(R[i, j]), (i, j)


def is_reversible(
    chain: FiniteMarkovChain, *, tol: float = 1e-10
) -> bool:
    """True iff detailed balance holds up to *tol*."""
    residual, _ = detailed_balance_residual(chain)
    return residual <= tol


def reversibilization(chain: FiniteMarkovChain) -> FiniteMarkovChain:
    """The additive reversibilization (P + P*)/2 with P* the time reversal.

    P*(x, y) = π(y)P(y, x)/π(x).  The result is reversible with the
    same stationary distribution; its spectral gap lower-bounds mixing
    for the original chain in the standard way.
    """
    pi = stationary_distribution(chain)
    if (pi <= 0).any():
        raise ValueError("reversibilization needs strictly positive pi")
    P_star = (pi[None, :] * chain.P.T) / pi[:, None]
    return FiniteMarkovChain(list(chain.states), 0.5 * (chain.P + P_star))
