"""Exact transition kernels for the paper's allocation chains.

For small (n, m) we enumerate Ω_m (partitions of m into at most n parts,
:mod:`repro.utils.partitions`) and build the dense transition matrix of

* scenario A (I_A):  remove bin i w.p. v_i/m, then insert per the rule's
  exact insertion pmf (:func:`scenario_a_kernel`);
* scenario B (I_B):  remove bin i w.p. 1/s over the s nonempty bins,
  then insert (:func:`scenario_b_kernel`);
* the §7 bounded open system: fair coin between a removal step (no-op
  when empty) and an insertion step (no-op at the population cap), over
  the state space ⋃_{k ≤ cap} Ω_k (:func:`open_bounded_kernel`).

These matrices are the ground truth for experiment E9: the exact mixing
time they yield is compared against the Theorem 1 / Claim 5.3 path
coupling bounds, and the simulators are cross-validated against them by
comparing empirical one-step transition frequencies.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.balls.load_vector import ominus, oplus
from repro.balls.rules import SchedulingRule
from repro.markov.chain import FiniteMarkovChain
from repro.utils.partitions import all_partitions
from repro.utils.validation import check_positive_int

__all__ = [
    "scenario_a_kernel",
    "scenario_b_kernel",
    "open_bounded_kernel",
]


def _closed_kernel(
    rule: SchedulingRule,
    n: int,
    m: int,
    removal: Literal["ball", "bin"],
) -> FiniteMarkovChain:
    n = check_positive_int("n", n)
    m = check_positive_int("m", m)
    states = all_partitions(m, n)
    index = {s: k for k, s in enumerate(states)}
    size = len(states)
    P = np.zeros((size, size), dtype=np.float64)
    for k, s in enumerate(states):
        v = np.array(s, dtype=np.int64)
        if removal == "ball":
            probs = v.astype(np.float64) / m
        else:
            nonempty = int(np.searchsorted(-v, 0, side="left"))
            probs = np.zeros(n)
            probs[:nonempty] = 1.0 / nonempty
        for i in range(n):
            p_rm = probs[i]
            if p_rm <= 0.0:
                continue
            vstar = ominus(v, i)
            q = rule.insertion_distribution(vstar)
            for j in range(n):
                if q[j] <= 0.0:
                    continue
                v0 = oplus(vstar, j)
                P[k, index[tuple(int(x) for x in v0)]] += p_rm * q[j]
    return FiniteMarkovChain(states, P)


def scenario_a_kernel(rule: SchedulingRule, n: int, m: int) -> FiniteMarkovChain:
    """Exact I_A kernel on Ω_m (removal distribution 𝒜)."""
    return _closed_kernel(rule, n, m, "ball")


def scenario_b_kernel(rule: SchedulingRule, n: int, m: int) -> FiniteMarkovChain:
    """Exact I_B kernel on Ω_m (removal distribution ℬ)."""
    return _closed_kernel(rule, n, m, "bin")


def open_bounded_kernel(
    rule: SchedulingRule,
    n: int,
    max_balls: int,
    *,
    removal: Literal["ball", "bin"] = "ball",
) -> FiniteMarkovChain:
    """Exact kernel of the §7 open system with population cap *max_balls*.

    Each step: with probability ½ attempt a removal (no-op on the empty
    state), with probability ½ attempt an insertion (no-op at the cap).
    The state space is ⋃_{k=0..max_balls} Ω_k.
    """
    n = check_positive_int("n", n)
    max_balls = check_positive_int("max_balls", max_balls)
    states: list[tuple[int, ...]] = []
    for k in range(max_balls + 1):
        states.extend(all_partitions(k, n))
    index = {s: k for k, s in enumerate(states)}
    size = len(states)
    P = np.zeros((size, size), dtype=np.float64)
    for k, s in enumerate(states):
        v = np.array(s, dtype=np.int64)
        m = int(v.sum())
        # Removal half-step.
        if m == 0:
            P[k, k] += 0.5
        else:
            if removal == "ball":
                probs = 0.5 * v.astype(np.float64) / m
            else:
                nonempty = int(np.searchsorted(-v, 0, side="left"))
                probs = np.zeros(n)
                probs[:nonempty] = 0.5 / nonempty
            for i in range(n):
                if probs[i] <= 0.0:
                    continue
                v_rm = ominus(v, i)
                P[k, index[tuple(int(x) for x in v_rm)]] += probs[i]
        # Insertion half-step.
        if m >= max_balls:
            P[k, k] += 0.5
        else:
            q = rule.insertion_distribution(v)
            for j in range(n):
                if q[j] <= 0.0:
                    continue
                v_in = oplus(v, j)
                P[k, index[tuple(int(x) for x in v_in)]] += 0.5 * q[j]
    return FiniteMarkovChain(states, P)
