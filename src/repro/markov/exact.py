"""Exact transition kernels for the paper's allocation chains.

For small (n, m) we enumerate Ω_m (partitions of m into at most n parts,
:mod:`repro.utils.partitions`) and build the dense transition matrix of

* scenario A (I_A):  remove bin i w.p. v_i/m, then insert per the rule's
  exact insertion pmf (:func:`scenario_a_kernel`);
* scenario B (I_B):  remove bin i w.p. 1/s over the s nonempty bins,
  then insert (:func:`scenario_b_kernel`);
* the §7 bounded open system: fair coin between a removal step (no-op
  when empty) and an insertion step (no-op at the population cap), over
  the state space ⋃_{k ≤ cap} Ω_k (:func:`open_bounded_kernel`).

These matrices are the ground truth for experiment E9: the exact mixing
time they yield is compared against the Theorem 1 / Claim 5.3 path
coupling bounds, and the simulators are cross-validated against them by
comparing empirical one-step transition frequencies.

The constructors are thin wrappers over
:class:`repro.engine.exact.ExactEngine`, which derives the kernel from
the declarative spec — the same declaration the scalar and vectorized
simulators execute.
"""

from __future__ import annotations

from typing import Literal

from repro.balls.rules import SchedulingRule
from repro.markov.chain import FiniteMarkovChain

__all__ = [
    "scenario_a_kernel",
    "scenario_b_kernel",
    "open_bounded_kernel",
]


def scenario_a_kernel(rule: SchedulingRule, n: int, m: int) -> FiniteMarkovChain:
    """Exact I_A kernel on Ω_m (removal distribution 𝒜)."""
    # Lazy: repro.engine.exact imports repro.markov.chain, so a
    # module-level import here would close an import cycle.
    from repro.engine.exact import ExactEngine
    from repro.engine.spec import scenario_a_spec

    return ExactEngine.kernel(scenario_a_spec(rule), n, m)


def scenario_b_kernel(rule: SchedulingRule, n: int, m: int) -> FiniteMarkovChain:
    """Exact I_B kernel on Ω_m (removal distribution ℬ)."""
    from repro.engine.exact import ExactEngine
    from repro.engine.spec import scenario_b_spec

    return ExactEngine.kernel(scenario_b_spec(rule), n, m)


def open_bounded_kernel(
    rule: SchedulingRule,
    n: int,
    max_balls: int,
    *,
    removal: Literal["ball", "bin"] = "ball",
) -> FiniteMarkovChain:
    """Exact kernel of the §7 open system with population cap *max_balls*.

    Each step: with probability ½ attempt a removal (no-op on the empty
    state), with probability ½ attempt an insertion (no-op at the cap).
    The state space is ⋃_{k=0..max_balls} Ω_k.
    """
    from repro.engine.exact import ExactEngine
    from repro.engine.spec import open_spec

    return ExactEngine.kernel(open_spec(rule, removal=removal, max_balls=max_balls), n)
