"""Stationary distribution solvers.

An ergodic chain has a unique stationary π with π P = π (§3 of the
paper).  We solve the singular linear system directly (replacing one
equation with the normalization Σπ = 1), with a power-iteration fallback
for ill-conditioned inputs.
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = ["stationary_distribution", "power_iteration"]


def stationary_distribution(chain: FiniteMarkovChain, *, tol: float = 1e-12) -> np.ndarray:
    """Solve π P = π, Σπ = 1 exactly via a linear solve.

    Raises ``ValueError`` if the solution has a significantly negative
    entry (which signals a reducible or otherwise degenerate chain).
    """
    P = chain.P
    nstates = chain.size
    # (P^T - I) π^T = 0 with the last row replaced by the normalization.
    A = P.T - np.eye(nstates)
    A[-1, :] = 1.0
    b = np.zeros(nstates)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(A, b)
    except np.linalg.LinAlgError:
        return power_iteration(chain, tol=tol)
    if pi.min() < -1e-8:
        raise ValueError(
            "stationary solve produced negative mass "
            f"(min {pi.min():.3e}); is the chain irreducible?"
        )
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


def power_iteration(
    chain: FiniteMarkovChain,
    *,
    tol: float = 1e-12,
    max_iters: int = 1_000_000,
) -> np.ndarray:
    """Stationary distribution via repeated application of P.

    Converges for ergodic chains; used as a fallback and as an
    independent cross-check in tests.
    """
    pi = np.full(chain.size, 1.0 / chain.size)
    for _ in range(max_iters):
        nxt = pi @ chain.P
        if np.abs(nxt - pi).sum() < tol:
            return nxt / nxt.sum()
        pi = nxt
    raise RuntimeError(f"power iteration did not converge in {max_iters} iters")


def expected_stat(
    chain: FiniteMarkovChain,
    pi: np.ndarray,
    stat,
) -> float:
    """E_π[stat(state)] for a state-wise statistic (e.g. max load)."""
    return float(sum(p * stat(s) for s, p in zip(chain.states, pi)))
