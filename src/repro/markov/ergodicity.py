"""Ergodicity checks: irreducibility and aperiodicity.

The Path Coupling Lemma applies to ergodic chains; the paper introduces
the lazy bit b into the edge-orientation chain *specifically* to ensure
ergodicity (Remark 1).  These graph-theoretic checks (via networkx on
the support digraph) let the tests machine-verify that hypothesis for
every exact kernel we build.
"""

from __future__ import annotations

from math import gcd

import networkx as nx
import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = ["support_digraph", "is_irreducible", "period", "is_aperiodic", "is_ergodic"]


def support_digraph(chain: FiniteMarkovChain, *, tol: float = 0.0) -> nx.DiGraph:
    """Digraph with an edge i→j whenever P[i, j] > tol."""
    g = nx.DiGraph()
    g.add_nodes_from(range(chain.size))
    rows, cols = np.nonzero(chain.P > tol)
    g.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return g


def is_irreducible(chain: FiniteMarkovChain) -> bool:
    """True iff the support digraph is strongly connected."""
    return nx.is_strongly_connected(support_digraph(chain))


def period(chain: FiniteMarkovChain) -> int:
    """The period of an irreducible chain: gcd of all cycle lengths.

    Computed by the standard BFS level trick: the gcd of
    (level(u) + 1 − level(v)) over all edges u→v within one strongly
    connected exploration.
    """
    g = support_digraph(chain)
    if not nx.is_strongly_connected(g):
        raise ValueError("period is only defined for irreducible chains")
    levels = {0: 0}
    queue = [0]
    g_period = 0
    while queue:
        u = queue.pop()
        for v in g.successors(u):
            if v not in levels:
                levels[v] = levels[u] + 1
                queue.append(v)
            else:
                g_period = gcd(g_period, levels[u] + 1 - levels[v])
    return abs(g_period) if g_period != 0 else 0


def is_aperiodic(chain: FiniteMarkovChain) -> bool:
    """True iff the (irreducible) chain has period 1."""
    return period(chain) == 1


def is_ergodic(chain: FiniteMarkovChain) -> bool:
    """Irreducible and aperiodic — the Path Coupling Lemma hypothesis."""
    g = support_digraph(chain)
    if not nx.is_strongly_connected(g):
        return False
    return nx.is_aperiodic(g)
