"""Exact Wasserstein (transportation) distances under the paper's metrics.

Path coupling really proves a *Wasserstein* contraction: if a coupling
on Γ contracts E[Δ] by ρ, then the transportation distance W_Δ between
the laws of two copies contracts by ρ per step, and TV ≤ W_Δ (since
Δ ≥ 1 on distinct states) turns that into the mixing bound.  On small
chains we can compute W_Δ exactly as a linear program and watch the
geometric decay W_Δ(δ_x P^t, π) ≤ ρ^t·D happen — the sharpest possible
numerical confirmation of the mechanism (used in the tests).

The LP is the standard optimal transport formulation:

    min Σ_{x,y} C[x,y]·γ[x,y]   s.t.  γ 1 = p,  γᵀ1 = q,  γ ≥ 0,

solved with scipy's HiGHS backend.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.markov.chain import FiniteMarkovChain

__all__ = ["wasserstein_distance", "delta_cost_matrix", "wasserstein_decay"]


def delta_cost_matrix(chain: FiniteMarkovChain, metric) -> np.ndarray:
    """Pairwise Δ costs between chain states via ``metric(x, y)``."""
    size = chain.size
    C = np.zeros((size, size))
    for i in range(size):
        for j in range(size):
            C[i, j] = float(metric(chain.states[i], chain.states[j]))
    if (C < 0).any():
        raise ValueError("metric produced negative distances")
    return C


def wasserstein_distance(p: np.ndarray, q: np.ndarray, C: np.ndarray) -> float:
    """Exact W(p, q) under cost matrix C, by linear programming."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    size = p.shape[0]
    if q.shape != (size,) or C.shape != (size, size):
        raise ValueError("shape mismatch between distributions and costs")
    if abs(p.sum() - 1) > 1e-9 or abs(q.sum() - 1) > 1e-9:
        raise ValueError("p and q must be probability vectors")
    # Variables gamma[i, j] flattened row-major.
    c = C.ravel()
    # Row sums = p.
    a_rows = np.zeros((size, size * size))
    for i in range(size):
        a_rows[i, i * size : (i + 1) * size] = 1.0
    # Column sums = q.
    a_cols = np.zeros((size, size * size))
    for j in range(size):
        a_cols[j, j::size] = 1.0
    A = np.vstack([a_rows, a_cols])
    b = np.concatenate([p, q])
    res = linprog(c, A_eq=A, b_eq=b, bounds=(0, None), method="highs")
    if not res.success:
        raise RuntimeError(f"transport LP failed: {res.message}")
    return float(res.fun)


def wasserstein_decay(
    chain: FiniteMarkovChain,
    metric,
    start,
    t_max: int,
    pi: np.ndarray | None = None,
) -> np.ndarray:
    """W_Δ(δ_start·P^t, π) for t = 0..t_max.

    Path coupling predicts decay ≤ ρ^t·Δ_max with the coupling's ρ —
    e.g. (1 − 1/m)^t for scenario A.
    """
    from repro.markov.stationary import stationary_distribution

    if pi is None:
        pi = stationary_distribution(chain)
    C = delta_cost_matrix(chain, metric)
    dist = chain.point_mass(start)
    out = np.empty(t_max + 1)
    for t in range(t_max + 1):
        out[t] = wasserstein_distance(dist, pi, C)
        dist = dist @ chain.P
    return out
