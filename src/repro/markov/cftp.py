"""Coupling From The Past: perfect sampling from the stationary law.

Propp & Wilson's CFTP turns a *grand coupling* (one shared random map
applied to every state simultaneously) into exact samples from π — no
mixing-time knowledge required.  We run it on the small exact chains:
the shared-randomness update of :mod:`repro.coupling.grand` (quantile
removal + shared insertion source) is applied to *all* states of Ω_m
from times −T, −2T, … until the maps compose to a constant function;
the constant value is an exact stationary draw.

Used in the tests to cross-validate :func:`repro.markov.stationary
.stationary_distribution` with samples produced by a *completely
different* mechanism, and as a live demonstration that the paper's
coupling machinery supports perfect simulation, not just mixing bounds.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.balls.distributions import quantile_removal_a, quantile_removal_b
from repro.balls.load_vector import ominus, oplus
from repro.balls.rules import SchedulingRule
from repro.utils.partitions import all_partitions
from repro.utils.rng import SeedLike, as_generator

__all__ = ["GrandUpdate", "cftp_sample", "cftp_samples", "monotone_cftp_sample"]

State = tuple[int, ...]
GrandUpdate = Callable[[State, np.ndarray], State]
# A grand update maps (state, randomness-vector) -> state; the same
# randomness drives every state (that's what makes it 'grand').


def make_grand_update(
    rule: SchedulingRule,
    n: int,
    *,
    scenario: Literal["a", "b"] = "a",
) -> tuple[GrandUpdate, int]:
    """Build the shared-randomness one-phase update and its randomness size.

    The randomness vector is [u_remove, rs_0 … rs_{L−1}-uniforms] with L
    the worst-case source length for the rule over Ω_m (for ABKU[d],
    L = d; ADAP needs the caller to ensure a generous L).
    """
    from repro.balls.rules import ABKURule

    if isinstance(rule, ABKURule):
        length = rule.d
    else:
        # Generous cap: χ at the max conceivable load is unknown here;
        # callers with ADAP rules should wrap their own update.
        raise TypeError("make_grand_update supports ABKU[d]; wrap ADAP manually")

    quantile = quantile_removal_a if scenario == "a" else quantile_removal_b

    def update(state: State, randomness: np.ndarray) -> State:
        v = np.array(state, dtype=np.int64)
        i = quantile(v, float(randomness[0]))
        v = ominus(v, i)
        rs = (randomness[1:] * n).astype(np.int64)
        rs = np.minimum(rs, n - 1)
        v = oplus(v, rule.select_from_source(v, rs))
        return tuple(int(x) for x in v)

    return update, 1 + length


def cftp_sample(
    rule: SchedulingRule,
    n: int,
    m: int,
    *,
    scenario: Literal["a", "b"] = "a",
    seed: SeedLike = None,
    max_doublings: int = 24,
) -> State:
    """One exact stationary sample of the (n, m) chain via CFTP.

    Doubles the lookback T until composing the grand updates from −T to
    0 is constant over all of Ω_m.  Crucially the randomness for times
    −1, −2, … is *fixed across doublings* (fresh randomness is appended
    only for the older times), which is what makes the output exact.
    """
    rng = as_generator(seed)
    update, rand_size = make_grand_update(rule, n, scenario=scenario)
    states = all_partitions(m, n)
    # randomness[k] drives the step at time −(k+1).
    randomness: list[np.ndarray] = []
    T = 1
    for _ in range(max_doublings):
        while len(randomness) < T:
            randomness.append(rng.random(rand_size))
        current = {s: s for s in states}
        # Apply from the oldest time forward: time −T uses randomness[T−1].
        for k in range(T - 1, -1, -1):
            r = randomness[k]
            current = {s0: update(s, r) for s0, s in current.items()}
        values = set(current.values())
        if len(values) == 1:
            return next(iter(values))
        T *= 2
    raise RuntimeError(
        f"CFTP did not coalesce within lookback {T // 2} "
        f"(n={n}, m={m}, scenario={scenario!r})"
    )


def monotone_cftp_sample(
    rule: SchedulingRule,
    n: int,
    m: int,
    *,
    seed: SeedLike = None,
    max_doublings: int = 40,
) -> State:
    """Perfect scenario-A sample via *monotone* CFTP (two chains only).

    The scenario-A grand phase is monotone for the majorization order
    (machine-checked in :mod:`repro.balls.majorization`), whose extremes
    on Ω_m are the crash state and the balanced state.  Tracking only
    those two sandwich chains makes CFTP cost O(T) per doubling instead
    of O(T·|Ω_m|) — perfect sampling at n, m in the hundreds.

    Scenario B is deliberately unsupported: its removal step is not
    monotone, so the sandwich argument would be unsound.
    """
    from repro.balls.majorization import bottom_state, top_state

    rng = as_generator(seed)
    update, rand_size = make_grand_update(rule, n, scenario="a")
    top = tuple(int(x) for x in top_state(m, n))
    bottom = tuple(int(x) for x in bottom_state(m, n))
    randomness: list[np.ndarray] = []
    T = 1
    for _ in range(max_doublings):
        while len(randomness) < T:
            randomness.append(rng.random(rand_size))
        hi, lo = top, bottom
        for k in range(T - 1, -1, -1):
            r = randomness[k]
            hi = update(hi, r)
            lo = update(lo, r)
        if hi == lo:
            return hi
        T *= 2
    raise RuntimeError(
        f"monotone CFTP did not coalesce within lookback {T // 2} "
        f"(n={n}, m={m})"
    )


def cftp_samples(
    rule: SchedulingRule,
    n: int,
    m: int,
    count: int,
    *,
    scenario: Literal["a", "b"] = "a",
    seed: SeedLike = None,
) -> list[State]:
    """Independent perfect samples (one CFTP run each)."""
    from repro.utils.rng import spawn_generators

    return [
        cftp_sample(rule, n, m, scenario=scenario, seed=g)
        for g in spawn_generators(seed, count)
    ]
