"""Conductance and Cheeger bounds — another mixing diagnostic.

The conductance Φ of an ergodic chain is the worst bottleneck ratio
over sets of stationary mass ≤ ½:

    Φ = min_{S : π(S) ≤ 1/2}  Q(S, S̄) / π(S),
    Q(x, y) = π(x) P(x, y).

Cheeger's inequality brackets the spectral gap: Φ²/2 ≤ gap ≤ 2Φ, hence
relaxation-time (and, for reversible chains, mixing-time) bounds.  For
the small exact chains of E9/E12 the exact conductance (exhaustive over
subsets, so |X| ≲ 20) or a sampled approximation pins down *where* the
bottleneck lives — e.g. the scenario-B diagonal's Ω(m²) shows up as a
conductance decaying like 1/m².
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.markov.chain import FiniteMarkovChain
from repro.markov.stationary import stationary_distribution
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "edge_flow_matrix",
    "set_conductance",
    "conductance",
    "cheeger_bounds",
]


def edge_flow_matrix(chain: FiniteMarkovChain, pi: np.ndarray | None = None) -> np.ndarray:
    """Q(x, y) = π(x)·P(x, y), the stationary edge flows."""
    if pi is None:
        pi = stationary_distribution(chain)
    return pi[:, None] * chain.P


def set_conductance(
    chain: FiniteMarkovChain,
    subset: np.ndarray,
    pi: np.ndarray | None = None,
    Q: np.ndarray | None = None,
) -> float:
    """Bottleneck ratio Q(S, S̄)/π(S) of a boolean-mask subset S.

    Raises for the empty or full set (undefined).
    """
    mask = np.asarray(subset, dtype=bool)
    if mask.shape != (chain.size,):
        raise ValueError(f"subset mask must have shape ({chain.size},)")
    if not mask.any() or mask.all():
        raise ValueError("conductance is undefined for the empty/full set")
    if pi is None:
        pi = stationary_distribution(chain)
    if Q is None:
        Q = edge_flow_matrix(chain, pi)
    flow_out = float(Q[np.ix_(mask, ~mask)].sum())
    mass = float(pi[mask].sum())
    if mass <= 0:
        return float("inf")
    return flow_out / mass


def conductance(
    chain: FiniteMarkovChain,
    *,
    exhaustive_limit: int = 18,
    samples: int = 20000,
    seed: SeedLike = None,
) -> float:
    """Φ of the chain: exact for ≤ exhaustive_limit states, sampled above.

    The sampled variant draws random subsets plus all the "level-set"
    cuts of the stationary ordering (which contain the optimal cut for
    birth-death-like chains) and returns the minimum found — an upper
    bound on Φ, adequate for diagnostic tables.
    """
    pi = stationary_distribution(chain)
    Q = edge_flow_matrix(chain, pi)
    size = chain.size
    best = float("inf")

    def consider(mask: np.ndarray) -> None:
        nonlocal best
        if not mask.any() or mask.all():
            return
        mass = float(pi[mask].sum())
        if mass > 0.5 + 1e-12:
            return
        val = float(Q[np.ix_(mask, ~mask)].sum()) / mass
        if val < best:
            best = val

    if size <= exhaustive_limit:
        for bits in itertools.product((False, True), repeat=size - 1):
            # Fix state 0 out of S to halve the work (S vs S̄ symmetry
            # is broken by the π(S) ≤ 1/2 restriction, so also try the
            # complement).
            mask = np.array((False,) + bits)
            consider(mask)
            consider(~mask)
    else:
        rng = as_generator(seed)
        order = np.argsort(-pi)
        for k in range(1, size):
            mask = np.zeros(size, dtype=bool)
            mask[order[:k]] = True
            consider(mask)
            consider(~mask)
        for _ in range(samples):
            mask = rng.random(size) < rng.uniform(0.05, 0.95)
            consider(mask)
    if best == float("inf"):
        raise RuntimeError("no admissible cut found (degenerate chain)")
    return best


def cheeger_bounds(chain: FiniteMarkovChain, **kwargs) -> tuple[float, float, float]:
    """(Φ²/2, spectral gap, 2Φ): the Cheeger sandwich, computed.

    Returns the lower bound, the measured gap and the upper bound; a
    violated sandwich (up to tolerance) signals a bug or a badly
    sampled Φ, so callers may assert on it.
    """
    from repro.markov.spectral import spectral_gap

    phi = conductance(chain, **kwargs)
    gap = spectral_gap(chain)
    return phi * phi / 2.0, gap, 2.0 * phi
