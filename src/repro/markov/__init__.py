"""Finite Markov chain substrate (§3 of the paper).

The paper models every allocation process as an ergodic Markov chain on
the space Ω_m of normalized load vectors and studies its mixing time
τ(ε) = min{T : ∀t ≥ T, max_x ||L(M_t | M_0 = x) − π||_TV ≤ ε}.  For
small (n, m) we can do all of this *exactly*:

* :mod:`repro.markov.chain` — the :class:`FiniteMarkovChain` container;
* :mod:`repro.markov.exact` — exact transition kernels of I_A / I_B with
  any scheduling rule, and of the bounded open system;
* :mod:`repro.markov.stationary` — stationary distribution solvers;
* :mod:`repro.markov.mixing` — exact total-variation decay d(t) and the
  exact mixing time τ(ε), the ground truth that experiment E9 compares
  against the path-coupling bounds;
* :mod:`repro.markov.spectral` — eigenvalue gap and relaxation time;
* :mod:`repro.markov.ergodicity` — irreducibility/aperiodicity checks
  (the ergodicity hypothesis of the Path Coupling Lemma).
"""

from repro.markov.chain import FiniteMarkovChain
from repro.markov.exact import (
    open_bounded_kernel,
    scenario_a_kernel,
    scenario_b_kernel,
)
from repro.markov.ergodicity import is_aperiodic, is_irreducible
from repro.markov.mixing import (
    exact_mixing_time,
    tv_decay,
    tv_distance,
)
from repro.markov.cftp import cftp_sample, cftp_samples
from repro.markov.conductance import cheeger_bounds, conductance
from repro.markov.hitting import expected_hitting_times, max_load_target_set
from repro.markov.product import build_coupled_chain_a, build_coupled_chain_b
from repro.markov.lower_bounds import reachability_lower_bound, relaxation_lower_bound
from repro.markov.reversibility import is_reversible, reversibilization
from repro.markov.spectral import relaxation_time, spectral_gap
from repro.markov.stationary import stationary_distribution
from repro.markov.wasserstein import wasserstein_decay, wasserstein_distance

__all__ = [
    "FiniteMarkovChain",
    "build_coupled_chain_a",
    "build_coupled_chain_b",
    "cftp_sample",
    "cftp_samples",
    "cheeger_bounds",
    "conductance",
    "expected_hitting_times",
    "is_reversible",
    "reachability_lower_bound",
    "relaxation_lower_bound",
    "reversibilization",
    "max_load_target_set",
    "wasserstein_decay",
    "wasserstein_distance",
    "exact_mixing_time",
    "is_aperiodic",
    "is_irreducible",
    "open_bounded_kernel",
    "relaxation_time",
    "scenario_a_kernel",
    "scenario_b_kernel",
    "spectral_gap",
    "stationary_distribution",
    "tv_decay",
    "tv_distance",
]
