"""Exact expected hitting times.

The recovery measurements of E7 time the first entry into the 'typical'
set {max load ≤ L}.  On small exact chains the same quantity is a
linear-algebra exercise: with A the target set and Q the kernel
restricted to the complement,

    E_x[T_A] solves (I − Q)·t = 1  on  x ∉ A.

This pins the simulators' measured recovery times against exact values
(integration tests) and gives exact worst-start recovery columns for
small instances.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = ["expected_hitting_times", "worst_start_hitting_time", "max_load_target_set"]


def expected_hitting_times(
    chain: FiniteMarkovChain,
    target: Sequence[Hashable],
) -> dict[Hashable, float]:
    """E_x[T_target] for every state x (0 on the target itself).

    Raises if the target is empty or the linear system is singular
    (which for an ergodic chain cannot happen unless target is empty).
    """
    target_idx = {chain.index_of(s) for s in target}
    if not target_idx:
        raise ValueError("target set must be non-empty")
    others = [i for i in range(chain.size) if i not in target_idx]
    out: dict[Hashable, float] = {chain.state_of(i): 0.0 for i in target_idx}
    if not others:
        return out
    pos = {i: k for k, i in enumerate(others)}
    Q = np.zeros((len(others), len(others)))
    for i in others:
        for j, p in enumerate(chain.P[i]):
            if p > 0 and j in pos:
                Q[pos[i], pos[j]] = p
    t = np.linalg.solve(np.eye(len(others)) - Q, np.ones(len(others)))
    for i in others:
        out[chain.state_of(i)] = float(t[pos[i]])
    return out


def max_load_target_set(
    chain: FiniteMarkovChain, max_load: int
) -> list[Hashable]:
    """States of a load-vector chain whose max load is ≤ *max_load*."""
    return [s for s in chain.states if s[0] <= max_load]


def worst_start_hitting_time(
    chain: FiniteMarkovChain,
    target: Sequence[Hashable],
    *,
    start_filter: Callable[[Hashable], bool] | None = None,
) -> tuple[Hashable, float]:
    """(argmax state, value) of E_x[T_target], optionally over a filter."""
    times = expected_hitting_times(chain, target)
    candidates = {
        s: t for s, t in times.items()
        if start_filter is None or start_filter(s)
    }
    if not candidates:
        raise ValueError("no start states after filtering")
    worst = max(candidates, key=lambda s: candidates[s])
    return worst, candidates[worst]
