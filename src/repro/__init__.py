"""repro — Recovery Time of Dynamic Allocation Processes (SPAA 1998).

A full reproduction of Czumaj's path-coupling framework for bounding
the *recovery time* (mixing time) of dynamic allocation processes,
together with every substrate the paper builds on:

* the balls-into-bins processes I_A / I_B with ABKU[d] and ADAP(χ)
  scheduling rules (:mod:`repro.balls`);
* the edge orientation problem of Ajtai et al. and the carpool
  reduction (:mod:`repro.edgeorient`);
* exact finite-Markov-chain analysis (:mod:`repro.markov`);
* the paper's couplings and the Path Coupling Lemma, with the
  closed-form recovery bounds of Theorem 1, Claim 5.3, Corollary 6.4
  and Theorem 2 (:mod:`repro.coupling`);
* Mitzenmacher's fluid-limit method for the typical state
  (:mod:`repro.fluid`);
* the measurement harness (:mod:`repro.analysis`) and the per-claim
  experiments E1–E15 (:mod:`repro.experiments`).

Quickstart::

    from repro import (LoadVector, ABKURule, ScenarioAProcess,
                       theorem1_bound, coalescence_time_a)

    rule = ABKURule(2)
    crash = LoadVector.all_in_one(100, 100)
    proc = ScenarioAProcess(rule, crash, seed=0)
    proc.run(theorem1_bound(100))          # run for the recovery bound
    print(proc.max_load)                    # back in the typical band
"""

from repro.balls import (
    ABKURule,
    AdaptiveRule,
    LoadVector,
    OpenSystemProcess,
    RelocationProcess,
    ScenarioAProcess,
    ScenarioBProcess,
    SchedulingRule,
    UniformRule,
    make_rule,
    static_allocate,
)
from repro.coupling import (
    RecoveryBounds,
    claim53_bound,
    coalescence_time_a,
    coalescence_time_b,
    coalescence_time_edge,
    corollary64_bound,
    path_coupling_bound,
    path_coupling_bound_zero_rate,
    theorem1_bound,
    theorem2_bound,
)
from repro.edgeorient import CarpoolSimulator, EdgeOrientationProcess
from repro.engine import (
    ExactEngine,
    ProcessSpec,
    ScalarEngine,
    VectorizedEngine,
)
from repro.experiments import run_all, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ABKURule",
    "AdaptiveRule",
    "CarpoolSimulator",
    "EdgeOrientationProcess",
    "ExactEngine",
    "LoadVector",
    "ProcessSpec",
    "ScalarEngine",
    "VectorizedEngine",
    "OpenSystemProcess",
    "RecoveryBounds",
    "RelocationProcess",
    "ScenarioAProcess",
    "ScenarioBProcess",
    "SchedulingRule",
    "UniformRule",
    "__version__",
    "claim53_bound",
    "coalescence_time_a",
    "coalescence_time_b",
    "coalescence_time_edge",
    "corollary64_bound",
    "make_rule",
    "path_coupling_bound",
    "path_coupling_bound_zero_rate",
    "run_all",
    "run_experiment",
    "static_allocate",
    "theorem1_bound",
    "theorem2_bound",
]
